// Package baselines provides the comparison schedulers used by the
// benchmark harness:
//
//   - FirstFit by start time (FirstFit without the length sort — isolates
//     the contribution of step 1 of the paper's algorithm);
//   - NextFit in arrival (start) order;
//   - BestFit by minimal busy-time increase;
//   - the coloring-based machine-minimization schedule from the §1.1 remark
//     (⌈k/g⌉ machines from an optimal interval-graph coloring — optimal in
//     machine count, but not in busy time, which motivates the paper);
//   - RandomFit, FirstFit on a seeded random job order (noise floor).
//
// Every baseline is a thin policy over the shared placement kernel
// (core.Placer): FirstFit variants drive LowestFit, BestFit drives the
// kernel's pruned argmin over span deltas, NextFit drives the kernel
// cursor. BestFitScan keeps the pre-kernel per-machine probe loop,
// registered as "bestfit-scan" for the ablation benchmarks; kernel and scan
// produce byte-identical schedules.
package baselines

import (
	"busytime/internal/algo"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/intgraph"
	"busytime/internal/xrand"
)

func init() {
	algo.Register(algo.Algorithm{
		Name:        "firstfit-start",
		Description: "FirstFit scanning jobs by start time (no length sort)",
		Run:         FirstFitByStart,
		RunScratch:  FirstFitByStartScratch,
		Decompose: &algo.Decomposer{
			Order:        func(in *core.Instance) []int32 { return in.StartOrder() },
			RunComponent: algo.ComponentLowestFit,
			Stitch:       true,
			Shard:        algo.ShardLowestFit,
		},
	})
	// NextFit carries cross-component state — its single-open-machine cursor
	// survives a component boundary, so splitting the run changes which
	// machines get abandoned. Not decomposable.
	algo.Register(algo.Algorithm{
		Name:        "nextfit",
		Description: "NextFit in start order (single open machine)",
		Run:         NextFit,
		RunScratch:  NextFitScratch,
	})
	algo.Register(algo.Algorithm{
		Name:        "bestfit",
		Description: "BestFit by minimal busy-time increase, longest job first (indexed kernel argmin)",
		Run:         BestFit,
		RunScratch:  BestFitScratch,
		Decompose:   bestFitDecomposer(),
	})
	algo.Register(algo.Algorithm{
		Name:        "bestfit-scan",
		Description: "BestFit with the plain per-machine probe loop (no selection index; ablation)",
		Run:         BestFitScan,
		RunScratch:  BestFitScanScratch,
		// The kernel argmin is byte-identical to the plain probe loop, so
		// component runs route through the kernel here too.
		Decompose: bestFitDecomposer(),
	})
	// MachineMin colors the whole interval graph at once; a component's
	// color classes shift globally, so it is not decomposable as registered.
	algo.Register(algo.Algorithm{
		Name:        "machine-min",
		Description: "⌈k/g⌉-machine schedule from optimal coloring (§1.1 remark)",
		Run:         MachineMin,
		RunScratch:  MachineMinScratch,
	})
	algo.Register(algo.Algorithm{
		Name:        "randomfit",
		Description: "FirstFit on a seeded random job order",
		Run:         func(in *core.Instance) *core.Schedule { return RandomFit(in, 1) },
		RunScratch: func(in *core.Instance, sc *core.Scratch) *core.Schedule {
			return RandomFitScratch(in, 1, sc)
		},
		Decompose: &algo.Decomposer{
			// The registered entry point fixes seed 1, so the decomposition
			// order is the same permutation the sequential run draws (the
			// permutation is derived per run either way).
			Order:        func(in *core.Instance) []int32 { return randomOrder32(in, 1) },
			RunComponent: algo.ComponentLowestFit,
			Stitch:       true,
			Shard:        algo.ShardLowestFit,
		},
	})
}

// bestFitDecomposer declares BestFit safe for the decomposition layer: the
// kernel argmin in length order, merged under the identity mapping. Machines
// holding only other components' jobs are hull-disjoint from every candidate
// job, so their delta is the full job length — the maximum — and they lose
// every argmin tie to lower indices; the component-local argmin therefore
// picks the same machine the sequential scan would.
func bestFitDecomposer() *algo.Decomposer {
	return &algo.Decomposer{
		Order:        func(in *core.Instance) []int32 { return in.LengthOrder() },
		RunComponent: algo.ComponentBestFit,
		Stitch:       true,
		Shard:        algo.ShardBestFit,
	}
}

// FirstFitByStart runs FirstFit scanning jobs by (start, end, ID).
func FirstFitByStart(in *core.Instance) *core.Schedule {
	s := core.NewSchedule(in)
	s.EnableMachineIndex()
	return lowestFitByStart(in, s)
}

// FirstFitByStartScratch is FirstFitByStart drawing schedule state from sc.
func FirstFitByStartScratch(in *core.Instance, sc *core.Scratch) *core.Schedule {
	s := sc.NewSchedule(in)
	s.EnableMachineIndex()
	return lowestFitByStart(in, s)
}

func lowestFitByStart(in *core.Instance, s *core.Schedule) *core.Schedule {
	k := s.Placer()
	for _, j := range in.StartOrder() {
		k.LowestFit(int(j))
	}
	return s
}

// NextFit assigns jobs in start order to a single currently open machine,
// opening a new one when the job does not fit. Unlike properfit this is the
// same algorithm — NextFit is the §3.1 greedy; it is re-exported here under
// its bin-packing name for harness comparisons on non-proper instances,
// where its 2-approximation guarantee does not apply.
func NextFit(in *core.Instance) *core.Schedule {
	return nextFitByStart(in, core.NewSchedule(in))
}

// NextFitScratch is NextFit drawing schedule state from sc.
func NextFitScratch(in *core.Instance, sc *core.Scratch) *core.Schedule {
	return nextFitByStart(in, sc.NewSchedule(in))
}

func nextFitByStart(in *core.Instance, s *core.Schedule) *core.Schedule {
	k := s.Placer()
	for _, j := range in.StartOrder() {
		k.NextFit(int(j))
	}
	return s
}

// BestFit scans jobs longest-first and assigns each to the machine whose
// busy time grows the least (ties to the lowest index), opening a new
// machine only when no machine fits. The argmin runs in the placement
// kernel with the machine-selection index enabled: the saturation bitmap
// skips provably rejecting machines word-wide and hull-disjoint machines
// are dropped as soon as any candidate is held, so the scan touches only
// machines that can actually win.
func BestFit(in *core.Instance) *core.Schedule {
	s := core.NewSchedule(in)
	s.EnableMachineIndex()
	return bestFitByLength(in, s)
}

// BestFitScratch is BestFit drawing schedule state from sc; warm runs
// perform zero allocations (the alloc-budget gate in CI pins this).
func BestFitScratch(in *core.Instance, sc *core.Scratch) *core.Schedule {
	s := sc.NewSchedule(in)
	s.EnableMachineIndex()
	return bestFitByLength(in, s)
}

func bestFitByLength(in *core.Instance, s *core.Schedule) *core.Schedule {
	k := s.Placer()
	for _, j := range in.LengthOrder() {
		k.BestFit(int(j))
	}
	return s
}

// BestFitScan is the pre-kernel BestFit: the same longest-first argmin, but
// probing every machine in index order with no selection index. It is the
// ablation baseline for the kernel BestFit and produces byte-identical
// schedules.
func BestFitScan(in *core.Instance) *core.Schedule {
	return bestFitScanInto(in, core.NewSchedule(in))
}

// BestFitScanScratch is BestFitScan drawing schedule state from sc.
func BestFitScanScratch(in *core.Instance, sc *core.Scratch) *core.Schedule {
	return bestFitScanInto(in, sc.NewSchedule(in))
}

func bestFitScanInto(in *core.Instance, s *core.Schedule) *core.Schedule {
	for _, jj := range in.LengthOrder() {
		j := int(jj)
		bestM, bestDelta := -1, 0.0
		for m := 0; m < s.NumMachines(); m++ {
			if !s.CanAssign(j, m) {
				continue
			}
			if delta := s.SpanDelta(m, in.Jobs[j].Iv); bestM < 0 || delta < bestDelta {
				bestM, bestDelta = m, delta
			}
		}
		if bestM < 0 {
			s.AssignNew(j)
			continue
		}
		s.Assign(j, bestM)
	}
	return s
}

// MachineMin builds the minimum-machine-count schedule of the §1.1 remark:
// color the interval graph optimally with k = ω colors, then pack color
// classes g at a time onto ⌈k/g⌉ machines. The result is optimal in the
// number of machines but can be far from optimal in busy time.
//
// MachineMin requires unit demands (the coloring argument does not apply to
// weighted jobs); it falls back to FirstFitByStart otherwise.
func MachineMin(in *core.Instance) *core.Schedule {
	if !unitDemands(in) {
		return FirstFitByStart(in)
	}
	return machineMinInto(in, core.NewSchedule(in))
}

// MachineMinScratch is MachineMin drawing schedule state from sc.
func MachineMinScratch(in *core.Instance, sc *core.Scratch) *core.Schedule {
	if !unitDemands(in) {
		return FirstFitByStartScratch(in, sc)
	}
	return machineMinInto(in, sc.NewSchedule(in))
}

func unitDemands(in *core.Instance) bool {
	for _, j := range in.Jobs {
		if j.Demand != 1 {
			return false
		}
	}
	return true
}

func machineMinInto(in *core.Instance, s *core.Schedule) *core.Schedule {
	g := intgraph.New(in.Set())
	classes := intgraph.ColorClasses(g.MinColoring())
	k := s.Placer()
	for ci, class := range classes {
		if ci%in.G == 0 {
			k.OpenMachine()
		}
		m := k.NumMachines() - 1
		for _, j := range class {
			k.Place(j, m)
		}
	}
	return s
}

// RandomFit runs FirstFit on a deterministic pseudo-random permutation of
// the jobs derived from seed.
func RandomFit(in *core.Instance, seed int64) *core.Schedule {
	return firstfit.ScheduleOrder(in, randomOrder(in, seed))
}

// RandomFitScratch is RandomFit drawing schedule state from sc (the
// permutation itself is still derived per run).
func RandomFitScratch(in *core.Instance, seed int64, sc *core.Scratch) *core.Schedule {
	return firstfit.ScheduleOrderScratch(in, randomOrder(in, seed), sc)
}

func randomOrder(in *core.Instance, seed int64) []int {
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	shuffle(order, seed)
	return order
}

// randomOrder32 is randomOrder in the registry's order representation; seed
// and n determine the permutation, so it matches randomOrder element for
// element.
func randomOrder32(in *core.Instance, seed int64) []int32 {
	order := make([]int32, in.N())
	for i := range order {
		order[i] = int32(i)
	}
	shuffle(order, seed)
	return order
}

// shuffle permutes order with the library's splitmix64 generator
// (deterministic in seed and platform-independent, unlike math/rand).
func shuffle[T int | int32](order []T, seed int64) {
	xrand.New(seed).Shuffle(len(order), func(i, j int) {
		order[i], order[j] = order[j], order[i]
	})
}
