package baselines

import (
	"testing"
	"testing/quick"

	"busytime/internal/algo"
	"busytime/internal/algo/exact"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
)

func iv(s, e float64) interval.Interval { return interval.New(s, e) }

func TestAllRegistered(t *testing.T) {
	for _, name := range []string{"firstfit-start", "nextfit", "bestfit", "machine-min", "randomfit"} {
		if _, ok := algo.Lookup(name); !ok {
			t.Errorf("%s not registered", name)
		}
	}
}

func TestAllFeasibleOnRandom(t *testing.T) {
	runs := []struct {
		name string
		run  algo.Func
	}{
		{"firstfit-start", FirstFitByStart},
		{"nextfit", NextFit},
		{"bestfit", BestFit},
		{"machine-min", MachineMin},
		{"randomfit", func(in *core.Instance) *core.Schedule { return RandomFit(in, 42) }},
	}
	for _, tc := range runs {
		t.Run(tc.name, func(t *testing.T) {
			f := func(seed int64, nn, gg uint8) bool {
				in := generator.General(seed, int(nn%25)+1, int(gg%4)+1, 40, 12)
				s := tc.run(in)
				return s.Verify() == nil && s.Complete()
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestMachineMinUsesMinimumMachines(t *testing.T) {
	// ⌈ω/g⌉ machines exactly (§1.1: a k-coloring induces ⌈k/g⌉ machines,
	// and interval graphs have χ = ω).
	for seed := int64(0); seed < 25; seed++ {
		in := generator.General(seed, 30, 3, 25, 10)
		s := MachineMin(in)
		if err := s.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		omega := in.Set().MaxDepth()
		want := (omega + in.G - 1) / in.G
		if s.NumMachines() != want {
			t.Errorf("seed %d: machines = %d, want ⌈%d/%d⌉ = %d",
				seed, s.NumMachines(), omega, in.G, want)
		}
	}
}

func TestMachineMinIsMachineLowerBound(t *testing.T) {
	// No feasible schedule can use fewer machines than ⌈ω/g⌉: any point of
	// depth ω needs that many machines simultaneously.
	in := generator.General(11, 20, 2, 15, 8)
	s := MachineMin(in)
	opt, err := exact.Solve(in)
	if err != nil {
		t.Skip("component too large for exact")
	}
	if opt.NumMachines() < s.NumMachines() {
		t.Errorf("exact used %d machines < machine-min %d", opt.NumMachines(), s.NumMachines())
	}
}

func TestMachineMinFallsBackOnDemands(t *testing.T) {
	in := core.NewInstance(3, iv(0, 2), iv(1, 3))
	in.Jobs[0].Demand = 2
	s := MachineMin(in)
	if err := s.Verify(); err != nil {
		t.Fatalf("demand fallback infeasible: %v", err)
	}
}

func TestBestFitPrefersNoGrowth(t *testing.T) {
	// With g=2: long [0,10] first; short [2,3] can go on M0 at zero growth
	// and BestFit must take it.
	in := core.NewInstance(2, iv(0, 10), iv(2, 3))
	s := BestFit(in)
	if s.NumMachines() != 1 {
		t.Errorf("machines = %d, want 1", s.NumMachines())
	}
	if s.Cost() != 10 {
		t.Errorf("cost = %v, want 10", s.Cost())
	}
}

func TestNextFitNeverRevisits(t *testing.T) {
	// Jobs: A[0,2] B[1,3] C[0.5,1.5] with g=2. Start order: A, C, B.
	// A,C on M0; B conflicts (depth 2 at [1,1.5]) → M1. A later D[4,5]
	// fits M1 (current) even though M0 also fits.
	in := core.NewInstance(2, iv(0, 2), iv(1, 3), iv(0.5, 1.5), iv(4, 5))
	s := NextFit(in)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if s.MachineOf(3) != s.MachineOf(1) {
		t.Errorf("NextFit should keep filling the current machine: D on %d, B on %d",
			s.MachineOf(3), s.MachineOf(1))
	}
}

func TestRandomFitDeterministicPerSeed(t *testing.T) {
	in := generator.General(5, 20, 3, 30, 9)
	a := RandomFit(in, 7).Cost()
	b := RandomFit(in, 7).Cost()
	if a != b {
		t.Errorf("same seed, different costs: %v vs %v", a, b)
	}
}

func TestEmptyInstances(t *testing.T) {
	in := core.NewInstance(2)
	for _, run := range []algo.Func{FirstFitByStart, NextFit, BestFit, MachineMin} {
		s := run(in)
		if s.Cost() != 0 || s.Verify() != nil {
			t.Error("empty instance mishandled")
		}
	}
}

func BenchmarkBestFit1k(b *testing.B) {
	in := generator.General(7, 1000, 4, 500, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BestFit(in)
	}
}

func BenchmarkMachineMin1k(b *testing.B) {
	in := generator.General(7, 1000, 4, 500, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MachineMin(in)
	}
}
