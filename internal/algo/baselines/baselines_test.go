package baselines

import (
	"fmt"
	"testing"
	"testing/quick"

	"busytime/internal/algo"
	"busytime/internal/algo/exact"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
)

func iv(s, e float64) interval.Interval { return interval.New(s, e) }

func TestAllRegistered(t *testing.T) {
	for _, name := range []string{"firstfit-start", "nextfit", "bestfit", "bestfit-scan", "machine-min", "randomfit"} {
		a, ok := algo.Lookup(name)
		if !ok {
			t.Errorf("%s not registered", name)
			continue
		}
		if a.RunScratch == nil {
			t.Errorf("%s has no RunScratch", name)
		}
	}
}

// diffFamilies mirrors the firstfit differential suite's generator sweep.
func diffFamilies(seed int64) []*core.Instance {
	gen := generator.General(seed, 120, 3, 80, 20)
	return []*core.Instance{
		gen,
		generator.Proper(seed, 100, 3, 60, 15),
		generator.Clique(seed, 60, 4, 10, 8),
		generator.BoundedLength(seed, 80, 2, 6, 4),
		generator.Laminar(seed, 3, 3, 3, 4, 20),
		generator.CloudBurst(seed, 150, 6, 200, 10, 4, 0.6),
		generator.LightpathWave(seed, 5, 30, 4, 40, 15, 10),
		generator.WithDemands(gen, seed+1, 3),
	}
}

// assertIdentical requires full byte-identity — machine count, job→machine
// map, per-machine job lists in assignment order, and bitwise-equal cost —
// matching the registry-wide suite's definition exactly.
func assertIdentical(t *testing.T, label string, a, b *core.Schedule) {
	t.Helper()
	if a.NumMachines() != b.NumMachines() {
		t.Fatalf("%s: %d machines vs %d", label, a.NumMachines(), b.NumMachines())
	}
	for j := 0; j < a.Instance().N(); j++ {
		if a.MachineOf(j) != b.MachineOf(j) {
			t.Fatalf("%s: job %d on machine %d vs %d", label, j, a.MachineOf(j), b.MachineOf(j))
		}
	}
	for m := 0; m < a.NumMachines(); m++ {
		ja, jb := a.MachineJobs(m), b.MachineJobs(m)
		if len(ja) != len(jb) {
			t.Fatalf("%s: machine %d holds %d vs %d jobs", label, m, len(ja), len(jb))
		}
		for i := range ja {
			if ja[i] != jb[i] {
				t.Fatalf("%s: machine %d slot %d: job %d vs %d", label, m, i, ja[i], jb[i])
			}
		}
	}
	if a.Cost() != b.Cost() {
		t.Fatalf("%s: cost %v vs %v", label, a.Cost(), b.Cost())
	}
}

// TestBestFitKernelMatchesScan is the differential contract of the kernel
// BestFit: across every generator family and a seed sweep, the pruned
// indexed argmin must produce byte-identical schedules to the naive
// per-machine probe loop it replaced.
func TestBestFitKernelMatchesScan(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		for fi, in := range diffFamilies(seed) {
			kernel := BestFit(in)
			if err := kernel.Verify(); err != nil {
				t.Fatalf("seed %d family %d: kernel BestFit infeasible: %v", seed, fi, err)
			}
			scan := BestFitScan(in)
			assertIdentical(t, fmt.Sprintf("seed=%d family=%d", seed, fi), kernel, scan)
		}
	}
}

// TestBestFitScratchMatchesFresh pins the recycled arena under BestFit:
// streaming many instances through one Scratch must reproduce fresh kernel
// runs byte for byte.
func TestBestFitScratchMatchesFresh(t *testing.T) {
	sc := new(core.Scratch)
	for seed := int64(0); seed < 8; seed++ {
		for fi, in := range diffFamilies(seed) {
			recycled := BestFitScratch(in, sc)
			fresh := BestFit(in)
			if fi == 0 && recycled.NumMachines() == 0 && in.N() > 0 {
				t.Fatal("empty schedule")
			}
			assertIdentical(t, "scratch", recycled, fresh)
		}
	}
}

// TestBestFitZeroAllocSteadyState is the BestFit arena acceptance gate:
// after one warm-up pass, re-scheduling an instance through a recycled
// Scratch — NewSchedule, EnableMachineIndex, and every kernel BestFit
// placement — performs zero allocations.
func TestBestFitZeroAllocSteadyState(t *testing.T) {
	in := generator.General(3, 3000, 4, 1500, 25)
	sc := new(core.Scratch)
	run := func() {
		s := BestFitScratch(in, sc)
		if s.NumMachines() == 0 {
			t.Fatal("empty schedule")
		}
	}
	run() // warm-up sizes the arena and the instance's cached length order
	if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
		t.Fatalf("warm BestFit allocated %v times per run; want 0", allocs)
	}
}

// FuzzBestFitWarmScratch drives the BestFit differential check from fuzzed
// shapes, with the scratch arriving warm from a differently-shaped instance
// so no stale index or arena state can leak into the argmin.
func FuzzBestFitWarmScratch(f *testing.F) {
	f.Add(int64(1), uint8(50), uint8(3), uint8(20))
	f.Add(int64(99), uint8(200), uint8(1), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, n, g, maxLen uint8) {
		in := generator.General(seed, int(n)+1, int(g)%8+1, float64(n)/2+1, float64(maxLen)+1)
		scan := BestFitScan(in)
		assertIdentical(t, "fuzz-kernel", BestFit(in), scan)
		sc := new(core.Scratch)
		warm := generator.General(seed+1, int(maxLen)+2, int(g)%5+1, float64(g)+2, float64(n)/4+1)
		_ = BestFitScratch(warm, sc)
		assertIdentical(t, "fuzz-scratch", BestFitScratch(in, sc), scan)
	})
}

func TestAllFeasibleOnRandom(t *testing.T) {
	runs := []struct {
		name string
		run  algo.Func
	}{
		{"firstfit-start", FirstFitByStart},
		{"nextfit", NextFit},
		{"bestfit", BestFit},
		{"machine-min", MachineMin},
		{"randomfit", func(in *core.Instance) *core.Schedule { return RandomFit(in, 42) }},
	}
	for _, tc := range runs {
		t.Run(tc.name, func(t *testing.T) {
			f := func(seed int64, nn, gg uint8) bool {
				in := generator.General(seed, int(nn%25)+1, int(gg%4)+1, 40, 12)
				s := tc.run(in)
				return s.Verify() == nil && s.Complete()
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestMachineMinUsesMinimumMachines(t *testing.T) {
	// ⌈ω/g⌉ machines exactly (§1.1: a k-coloring induces ⌈k/g⌉ machines,
	// and interval graphs have χ = ω).
	for seed := int64(0); seed < 25; seed++ {
		in := generator.General(seed, 30, 3, 25, 10)
		s := MachineMin(in)
		if err := s.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		omega := in.Set().MaxDepth()
		want := (omega + in.G - 1) / in.G
		if s.NumMachines() != want {
			t.Errorf("seed %d: machines = %d, want ⌈%d/%d⌉ = %d",
				seed, s.NumMachines(), omega, in.G, want)
		}
	}
}

func TestMachineMinIsMachineLowerBound(t *testing.T) {
	// No feasible schedule can use fewer machines than ⌈ω/g⌉: any point of
	// depth ω needs that many machines simultaneously.
	in := generator.General(11, 20, 2, 15, 8)
	s := MachineMin(in)
	opt, err := exact.Solve(in)
	if err != nil {
		t.Skip("component too large for exact")
	}
	if opt.NumMachines() < s.NumMachines() {
		t.Errorf("exact used %d machines < machine-min %d", opt.NumMachines(), s.NumMachines())
	}
}

func TestMachineMinFallsBackOnDemands(t *testing.T) {
	in := core.NewInstance(3, iv(0, 2), iv(1, 3))
	in.Jobs[0].Demand = 2
	s := MachineMin(in)
	if err := s.Verify(); err != nil {
		t.Fatalf("demand fallback infeasible: %v", err)
	}
}

func TestBestFitPrefersNoGrowth(t *testing.T) {
	// With g=2: long [0,10] first; short [2,3] can go on M0 at zero growth
	// and BestFit must take it.
	in := core.NewInstance(2, iv(0, 10), iv(2, 3))
	s := BestFit(in)
	if s.NumMachines() != 1 {
		t.Errorf("machines = %d, want 1", s.NumMachines())
	}
	if s.Cost() != 10 {
		t.Errorf("cost = %v, want 10", s.Cost())
	}
}

func TestNextFitNeverRevisits(t *testing.T) {
	// Jobs: A[0,2] B[1,3] C[0.5,1.5] with g=2. Start order: A, C, B.
	// A,C on M0; B conflicts (depth 2 at [1,1.5]) → M1. A later D[4,5]
	// fits M1 (current) even though M0 also fits.
	in := core.NewInstance(2, iv(0, 2), iv(1, 3), iv(0.5, 1.5), iv(4, 5))
	s := NextFit(in)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if s.MachineOf(3) != s.MachineOf(1) {
		t.Errorf("NextFit should keep filling the current machine: D on %d, B on %d",
			s.MachineOf(3), s.MachineOf(1))
	}
}

func TestRandomFitDeterministicPerSeed(t *testing.T) {
	in := generator.General(5, 20, 3, 30, 9)
	a := RandomFit(in, 7).Cost()
	b := RandomFit(in, 7).Cost()
	if a != b {
		t.Errorf("same seed, different costs: %v vs %v", a, b)
	}
}

func TestEmptyInstances(t *testing.T) {
	in := core.NewInstance(2)
	for _, run := range []algo.Func{FirstFitByStart, NextFit, BestFit, MachineMin} {
		s := run(in)
		if s.Cost() != 0 || s.Verify() != nil {
			t.Error("empty instance mishandled")
		}
	}
}

func BenchmarkBestFit1k(b *testing.B) {
	in := generator.General(7, 1000, 4, 500, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BestFit(in)
	}
}

func BenchmarkMachineMin1k(b *testing.B) {
	in := generator.General(7, 1000, 4, 500, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MachineMin(in)
	}
}
