package firstfit

import (
	"testing"

	"busytime/internal/core"
	"busytime/internal/generator"
)

// diffFamilies enumerates the generator families the differential suite
// sweeps; sizes stay modest so the fuzz-style seed loop stays fast.
func diffFamilies(seed int64) []*core.Instance {
	gen := generator.General(seed, 120, 3, 80, 20)
	return []*core.Instance{
		gen,
		generator.Proper(seed, 100, 3, 60, 15),
		generator.Clique(seed, 60, 4, 10, 8),
		generator.BoundedLength(seed, 80, 2, 6, 4),
		generator.Laminar(seed, 3, 3, 3, 4, 20),
		generator.CloudBurst(seed, 150, 6, 200, 10, 4, 0.6),
		generator.LightpathWave(seed, 5, 30, 4, 40, 15, 10),
		generator.WithDemands(gen, seed+1, 3),
	}
}

// assertIdentical fails unless the two schedules are byte-identical: same
// machine count, same job→machine assignment, same per-machine job lists,
// and bitwise-equal costs.
func assertIdentical(t *testing.T, label string, a, b *core.Schedule) {
	t.Helper()
	if a.NumMachines() != b.NumMachines() {
		t.Fatalf("%s: %d machines vs %d", label, a.NumMachines(), b.NumMachines())
	}
	for j := 0; j < a.Instance().N(); j++ {
		if a.MachineOf(j) != b.MachineOf(j) {
			t.Fatalf("%s: job %d on machine %d vs %d", label, j, a.MachineOf(j), b.MachineOf(j))
		}
	}
	for m := 0; m < a.NumMachines(); m++ {
		ja, jb := a.MachineJobs(m), b.MachineJobs(m)
		if len(ja) != len(jb) {
			t.Fatalf("%s: machine %d holds %d vs %d jobs", label, m, len(ja), len(jb))
		}
		for i := range ja {
			if ja[i] != jb[i] {
				t.Fatalf("%s: machine %d slot %d: job %d vs %d", label, m, i, ja[i], jb[i])
			}
		}
	}
	if a.Cost() != b.Cost() {
		t.Fatalf("%s: cost %v vs %v", label, a.Cost(), b.Cost())
	}
}

// TestIndexedMatchesScan is the differential contract of the
// machine-selection index: across every generator family and a fuzz-style
// seed sweep, indexed FirstFit must produce byte-identical schedules to the
// plain machine scan and to the fully linear ablation variant.
func TestIndexedMatchesScan(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		for fi, in := range diffFamilies(seed) {
			indexed := Schedule(in)
			if err := indexed.Verify(); err != nil {
				t.Fatalf("seed %d family %d: indexed schedule infeasible: %v", seed, fi, err)
			}
			scan := ScheduleScan(in)
			assertIdentical(t, labelFor(seed, fi, "scan"), indexed, scan)
			linear := ScheduleLinear(in)
			assertIdentical(t, labelFor(seed, fi, "linear"), indexed, linear)
		}
	}
}

func labelFor(seed int64, family int, variant string) string {
	return "seed=" + itoa(int(seed)) + " family=" + itoa(family) + " vs " + variant
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestIndexedScratchMatchesFresh pins down that the recycled index inside a
// Scratch (bitmap, segment tree, load shards, profiles) is fully reset
// between instances: streaming many different instances through one Scratch
// must reproduce fresh runs byte for byte.
func TestIndexedScratchMatchesFresh(t *testing.T) {
	sc := new(core.Scratch)
	for seed := int64(0); seed < 10; seed++ {
		for fi, in := range diffFamilies(seed) {
			recycled := ScheduleScratch(in, sc)
			fresh := Schedule(in)
			assertIdentical(t, labelFor(seed, fi, "scratch"), recycled, fresh)
		}
	}
}

// TestScratchReuseAcrossSizes stresses the pooled arena with a ladder of
// instance sizes through one Scratch — small, large, small again — so every
// backing array is exercised both growing and shrunken-in-place; each
// recycled schedule must be byte-identical to a fresh indexed run and to the
// plain scan.
func TestScratchReuseAcrossSizes(t *testing.T) {
	sc := new(core.Scratch)
	sizes := []int{30, 2500, 100, 1200, 7, 2500, 600}
	for round, n := range sizes {
		in := generator.General(int64(300+round), n, 3+round%4, float64(n)/2+1, 18)
		recycled := ScheduleScratch(in, sc)
		if err := recycled.Verify(); err != nil {
			t.Fatalf("round %d (n=%d): recycled schedule infeasible: %v", round, n, err)
		}
		fresh := Schedule(in)
		assertIdentical(t, "size-ladder round "+itoa(round)+" vs fresh", recycled, fresh)
		scan := ScheduleScan(in)
		assertIdentical(t, "size-ladder round "+itoa(round)+" vs scan", recycled, scan)
	}
}

// TestScratchReuseAcrossFamilies runs every generator family back to back
// through one Scratch and pins each recycled schedule against the plain
// scan, so no family-specific axis shape (degenerate hulls, few distinct
// times, demand weights) can leak state through the recycled arena.
func TestScratchReuseAcrossFamilies(t *testing.T) {
	sc := new(core.Scratch)
	for seed := int64(50); seed < 54; seed++ {
		for fi, in := range diffFamilies(seed) {
			recycled := ScheduleScratch(in, sc)
			scan := ScheduleScan(in)
			assertIdentical(t, labelFor(seed, fi, "scratch-vs-scan"), recycled, scan)
		}
	}
}

// FuzzIndexedMatchesScan drives the differential check from fuzzed seeds and
// shape parameters.
func FuzzIndexedMatchesScan(f *testing.F) {
	f.Add(int64(1), uint8(50), uint8(3), uint8(20))
	f.Add(int64(99), uint8(200), uint8(1), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, n, g, maxLen uint8) {
		in := generator.General(seed, int(n)+1, int(g)%8+1, float64(n)/2+1, float64(maxLen)+1)
		indexed := Schedule(in)
		scan := ScheduleScan(in)
		assertIdentical(t, "fuzz", indexed, scan)
		if err := indexed.Verify(); err != nil {
			t.Fatalf("infeasible: %v", err)
		}
		// The pooled-arena path must agree too, including when the scratch
		// arrives warm from a differently-shaped instance.
		sc := new(core.Scratch)
		warm := generator.General(seed+1, int(maxLen)+2, int(g)%5+1, float64(g)+2, float64(n)/4+1)
		_ = ScheduleScratch(warm, sc)
		assertIdentical(t, "fuzz-scratch", ScheduleScratch(in, sc), scan)
	})
}
