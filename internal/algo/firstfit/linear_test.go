package firstfit

import (
	"testing"
	"testing/quick"

	"busytime/internal/generator"
)

func TestLinearMatchesTreeBacked(t *testing.T) {
	f := func(seed int64, nn, gg uint8) bool {
		in := generator.General(seed, int(nn%40)+1, int(gg%4)+1, 50, 15)
		a := Schedule(in)
		b := ScheduleLinear(in)
		if b.Verify() != nil {
			return false
		}
		if a.NumMachines() != b.NumMachines() {
			return false
		}
		for j := 0; j < in.N(); j++ {
			if a.MachineOf(j) != b.MachineOf(j) {
				return false
			}
		}
		return a.Cost() == b.Cost()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearWithDemands(t *testing.T) {
	base := generator.General(5, 30, 4, 40, 12)
	in := generator.WithDemands(base, 9, 4)
	a := Schedule(in)
	b := ScheduleLinear(in)
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
	if a.Cost() != b.Cost() {
		t.Errorf("costs differ: tree %v vs linear %v", a.Cost(), b.Cost())
	}
}

func BenchmarkLinear1k(b *testing.B) {
	in := generator.General(7, 1000, 4, 500, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ScheduleLinear(in)
	}
}
