package firstfit

import (
	"math"
	"testing"
	"testing/quick"

	"busytime/internal/algo"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
)

func iv(s, e float64) interval.Interval { return interval.New(s, e) }

func TestRegistered(t *testing.T) {
	a, ok := algo.Lookup("firstfit")
	if !ok {
		t.Fatal("firstfit not registered")
	}
	if a.Run == nil || a.Name != "firstfit" {
		t.Fatalf("bad registration: %+v", a)
	}
}

func TestEmptyInstance(t *testing.T) {
	s := Schedule(core.NewInstance(2))
	if s.NumMachines() != 0 || s.Cost() != 0 {
		t.Error("empty instance should yield empty schedule")
	}
	if err := s.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestSingleMachinePacking(t *testing.T) {
	// Three pairwise disjoint jobs: all fit on one machine even with g=1.
	in := core.NewInstance(1, iv(0, 1), iv(2, 3), iv(4, 5))
	s := Schedule(in)
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if s.NumMachines() != 1 {
		t.Errorf("machines = %d, want 1", s.NumMachines())
	}
	if s.Cost() != 3 {
		t.Errorf("cost = %v, want 3", s.Cost())
	}
}

func TestLongestFirstOrder(t *testing.T) {
	// With g=1: the long job [0,10] is placed first on M0; the two short
	// jobs both conflict with it but are mutually disjoint, so they share M1.
	in := core.NewInstance(1, iv(2, 3), iv(0, 10), iv(5, 6))
	s := Schedule(in)
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := s.MachineOf(1); got != 0 {
		t.Errorf("longest job on machine %d, want 0", got)
	}
	if s.NumMachines() != 2 {
		t.Errorf("machines = %d, want 2", s.NumMachines())
	}
	if s.Cost() != 12 {
		t.Errorf("cost = %v, want 12", s.Cost())
	}
}

func TestCapacityRespected(t *testing.T) {
	// Four identical jobs, g = 2 → exactly two machines.
	in := core.NewInstance(2, iv(0, 1), iv(0, 1), iv(0, 1), iv(0, 1))
	s := Schedule(in)
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if s.NumMachines() != 2 {
		t.Errorf("machines = %d, want 2", s.NumMachines())
	}
	if s.Cost() != 2 {
		t.Errorf("cost = %v, want 2", s.Cost())
	}
}

func TestScheduleOrderAdversarialFig4(t *testing.T) {
	// Theorem 2.4: under the adversarial order FirstFit pays g(3−2ε′) while
	// OPT = g+1.
	const g = 4
	const eps = 0.1
	in, order := generator.Fig4(g, eps)
	s := ScheduleOrder(in, order)
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	want := float64(g) * (3 - 2*eps)
	if math.Abs(s.Cost()-want) > 1e-9 {
		t.Errorf("adversarial cost = %v, want %v", s.Cost(), want)
	}
	if s.NumMachines() != g {
		t.Errorf("machines = %d, want %d", s.NumMachines(), g)
	}
	// Every machine spans the whole construction.
	for m := 0; m < s.NumMachines(); m++ {
		if math.Abs(s.MachineBusy(m)-(3-2*eps)) > 1e-9 {
			t.Errorf("machine %d busy %v, want %v", m, s.MachineBusy(m), 3-2*eps)
		}
	}
}

func TestQuickFeasibleAndWithinFourTimesBound(t *testing.T) {
	f := func(seed int64, nn, gg uint8) bool {
		n := int(nn%40) + 1
		g := int(gg%4) + 1
		in := generator.General(seed, n, g, 50, 15)
		s := Schedule(in)
		if err := s.Verify(); err != nil {
			return false
		}
		lb := core.BestBound(in)
		if lb == 0 {
			return s.Cost() == 0
		}
		// Theorem 2.1 gives cost ≤ 4·OPT; OPT ≥ lb is all we can check fast.
		// The tight ratio test against exact OPT lives in the exact package.
		return s.Cost() >= lb-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOrderPermutationStillFeasible(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn%20) + 1
		in := generator.General(seed, n, 3, 40, 10)
		order := make([]int, n)
		for i := range order {
			order[i] = n - 1 - i // arbitrary fixed permutation
		}
		s := ScheduleOrder(in, order)
		return s.Verify() == nil && s.Complete()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDemandAwareFirstFit(t *testing.T) {
	in := core.NewInstance(3, iv(0, 4), iv(1, 3), iv(2, 5))
	in.Jobs[0].Demand = 2
	in.Jobs[1].Demand = 2
	s := Schedule(in)
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Job 0 (demand 2) and job 1 (demand 2) overlap: cannot share with g=3.
	if s.MachineOf(0) == s.MachineOf(1) {
		t.Error("two demand-2 jobs share a machine with g=3")
	}
}

func BenchmarkFirstFit1k(b *testing.B) {
	in := generator.General(7, 1000, 4, 500, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Schedule(in)
	}
}
