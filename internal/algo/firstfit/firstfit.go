// Package firstfit implements Algorithm FirstFit (Section 2.1 of the paper):
// sort jobs by non-increasing length and assign each to the lowest-indexed
// machine with residual capacity throughout the job's interval, opening a
// new machine when none fits.
//
// Theorem 2.1 shows FirstFit(J) ≤ 4·OPT(J) for every instance, and
// Theorem 2.4 exhibits instances forcing a ratio arbitrarily close to 3, so
// the algorithm's approximation ratio lies in [3, 4].
//
// Placement goes through the shared kernel (core.Placer): FirstFit is the
// LowestFit primitive driven in the paper's length order, with the machine
// selection index enabled so the scan is sublinear. ScheduleScan is the
// plain per-machine probe loop, kept for ablation A6 and registered as
// "firstfit-scan"; both paths produce byte-identical schedules.
package firstfit

import (
	"busytime/internal/algo"
	"busytime/internal/core"
)

func init() {
	algo.Register(algo.Algorithm{
		Name:        "firstfit",
		Description: "FirstFit by non-increasing length (§2.1, 4-approximation), indexed machine selection",
		Run:         Schedule,
		RunScratch:  ScheduleScratch,
		Decompose:   Decomposer(),
	})
	algo.Register(algo.Algorithm{
		Name:        "firstfit-scan",
		Description: "FirstFit with the linear machine scan (no selection index; ablation A6)",
		Run:         ScheduleScan,
		RunScratch:  ScheduleScanScratch,
		// The scan body is the kernel LowestFit too (the index prunings are
		// sound, so indexed component runs merge byte-identical to the
		// sequential scan), hence one shared Decomposer.
		Decompose: Decomposer(),
	})
}

// Decomposer declares FirstFit safe for the component-decomposition layer:
// LowestFit driven in the paper's length order, component by component,
// merged under the identity machine mapping. The length order restricted to
// a component is the component's length order, and a machine's jobs from
// other (time-disjoint) components never change a probe's outcome, so the
// merged run equals the sequential one exactly.
func Decomposer() *algo.Decomposer {
	return &algo.Decomposer{
		Order:        func(in *core.Instance) []int32 { return in.LengthOrder() },
		RunComponent: algo.ComponentLowestFit,
		Stitch:       true,
		Shard:        algo.ShardLowestFit,
	}
}

// Schedule runs FirstFit on a copy of the instance and returns a complete
// feasible schedule of the original instance (job order preserved).
func Schedule(in *core.Instance) *core.Schedule {
	s := core.NewSchedule(in)
	s.EnableMachineIndex()
	assignAllByLength(in, s.Placer())
	return s
}

// ScheduleScratch is Schedule with all schedule state drawn from sc, so a
// worker looping over a batch of instances reuses one set of allocations
// (the machine-selection index included). The returned schedule is only
// valid until sc's next use.
func ScheduleScratch(in *core.Instance, sc *core.Scratch) *core.Schedule {
	s := sc.NewSchedule(in)
	s.EnableMachineIndex()
	assignAllByLength(in, s.Placer())
	return s
}

// assignAllByLength feeds every job to the kernel in the paper's
// non-increasing length order, read from the instance's cached ordering
// (computed once per instance, like its time axis) so steady-state batch
// traffic neither sorts nor allocates per run.
func assignAllByLength(in *core.Instance, k core.Placer) {
	for _, j := range in.LengthOrder() {
		k.LowestFit(int(j))
	}
}

// ScheduleOrder runs FirstFit scanning jobs by the given index order. The
// paper's FirstFit uses non-increasing length; baselines reuse this routine
// with other orders.
func ScheduleOrder(in *core.Instance, order []int) *core.Schedule {
	s := core.NewSchedule(in)
	s.EnableMachineIndex()
	k := s.Placer()
	for _, j := range order {
		k.LowestFit(j)
	}
	return s
}

// ScheduleOrderScratch is ScheduleOrder drawing schedule state from sc.
func ScheduleOrderScratch(in *core.Instance, order []int, sc *core.Scratch) *core.Schedule {
	s := sc.NewSchedule(in)
	s.EnableMachineIndex()
	k := s.Placer()
	for _, j := range order {
		k.LowestFit(j)
	}
	return s
}

// ScheduleScan is FirstFit without the machine-selection index: every job
// probes machines 0..M−1 in order through the residual-capacity hints and
// interval trees (the PR 1 fast path). It exists as the ablation baseline
// for the index and produces schedules byte-identical to Schedule.
func ScheduleScan(in *core.Instance) *core.Schedule {
	s := core.NewSchedule(in)
	assignAllByLength(in, s.Placer())
	return s
}

// ScheduleScanScratch is ScheduleScan drawing schedule state from sc (the
// kernel recycles the per-machine interval trees instead of the index).
func ScheduleScanScratch(in *core.Instance, sc *core.Scratch) *core.Schedule {
	s := sc.NewSchedule(in)
	assignAllByLength(in, s.Placer())
	return s
}
