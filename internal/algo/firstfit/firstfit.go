// Package firstfit implements Algorithm FirstFit (Section 2.1 of the paper):
// sort jobs by non-increasing length and assign each to the lowest-indexed
// machine with residual capacity throughout the job's interval, opening a
// new machine when none fits.
//
// Theorem 2.1 shows FirstFit(J) ≤ 4·OPT(J) for every instance, and
// Theorem 2.4 exhibits instances forcing a ratio arbitrarily close to 3, so
// the algorithm's approximation ratio lies in [3, 4].
package firstfit

import (
	"sort"

	"busytime/internal/algo"
	"busytime/internal/core"
)

func init() {
	algo.Register(algo.Algorithm{
		Name:        "firstfit",
		Description: "FirstFit by non-increasing length (§2.1, 4-approximation)",
		Run:         Schedule,
		RunScratch:  ScheduleScratch,
	})
}

// Schedule runs FirstFit on a copy of the instance and returns a complete
// feasible schedule of the original instance (job order preserved).
func Schedule(in *core.Instance) *core.Schedule {
	s := core.NewSchedule(in)
	for _, j := range lengthOrder(in) {
		assignFirstFit(s, j)
	}
	return s
}

// ScheduleScratch is Schedule with all schedule state drawn from sc, so a
// worker looping over a batch of instances reuses one set of allocations.
// The returned schedule is only valid until sc's next use.
func ScheduleScratch(in *core.Instance, sc *core.Scratch) *core.Schedule {
	s := sc.NewSchedule(in)
	for _, j := range lengthOrder(in) {
		assignFirstFit(s, j)
	}
	return s
}

// ScheduleOrder runs FirstFit scanning jobs by the given index order. The
// paper's FirstFit uses non-increasing length; baselines reuse this routine
// with other orders.
func ScheduleOrder(in *core.Instance, order []int) *core.Schedule {
	s := core.NewSchedule(in)
	for _, j := range order {
		assignFirstFit(s, j)
	}
	return s
}

// assignFirstFit places job index j on the first machine that can process
// it, opening a new machine if none can (step 2 of the algorithm). Each
// probe consults the machine's residual-capacity hints (busy hull, peak
// load, saturation witnesses) before falling back to the interval-tree
// query, so the scan prunes saturated and disjoint machines in O(1); see
// core.Schedule.TryAssign.
func assignFirstFit(s *core.Schedule, j int) {
	for m := 0; m < s.NumMachines(); m++ {
		if s.TryAssign(j, m) {
			return
		}
	}
	s.AssignNew(j)
}

// lengthOrder returns job indices sorted by non-increasing length, ties
// broken by (start, end, ID) for determinism (step 1 of the algorithm).
func lengthOrder(in *core.Instance) []int {
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	jobs := in.Jobs
	sort.Slice(order, func(a, b int) bool {
		a, b = order[a], order[b]
		ja, jb := jobs[a], jobs[b]
		if la, lb := ja.Len(), jb.Len(); la != lb {
			return la > lb
		}
		if ja.Iv.Start != jb.Iv.Start {
			return ja.Iv.Start < jb.Iv.Start
		}
		if ja.Iv.End != jb.Iv.End {
			return ja.Iv.End < jb.Iv.End
		}
		return ja.ID < jb.ID
	})
	return order
}
