package firstfit

import (
	"slices"

	"busytime/internal/core"
)

// ScheduleLinear is FirstFit with linear-scan capacity checks instead of the
// interval-tree index used by core.Schedule: each machine keeps a plain job
// list and a feasibility test sweeps every job on the machine. The produced
// assignment is identical to Schedule (same order, same first-fit rule); the
// function exists for ablation A2, which measures what the tree index buys
// at scale.
func ScheduleLinear(in *core.Instance) *core.Schedule {
	order := in.LengthOrder()
	type machine struct {
		jobs []int
	}
	var machines []*machine

	fits := func(mc *machine, j int) bool {
		job := in.Jobs[j]
		// Demand-weighted closed-depth check within the job's window by a
		// full sweep over the machine's jobs.
		type evt struct {
			t     float64
			delta int
		}
		var evs []evt
		for _, jj := range mc.jobs {
			other := in.Jobs[jj]
			x, ok := other.Iv.Intersect(job.Iv)
			if !ok {
				continue
			}
			evs = append(evs, evt{x.Start, other.Demand}, evt{x.End, -other.Demand})
		}
		if len(evs) == 0 {
			return job.Demand <= in.G
		}
		slices.SortFunc(evs, func(a, b evt) int {
			if a.t != b.t {
				if a.t < b.t {
					return -1
				}
				return 1
			}
			return b.delta - a.delta
		})
		depth, peak := 0, 0
		for _, e := range evs {
			depth += e.delta
			if depth > peak {
				peak = depth
			}
		}
		return peak+job.Demand <= in.G
	}

	assign := make([]int, in.N())
	for _, jj := range order {
		j := int(jj)
		placed := -1
		for m, mc := range machines {
			if fits(mc, j) {
				mc.jobs = append(mc.jobs, j)
				placed = m
				break
			}
		}
		if placed < 0 {
			machines = append(machines, &machine{jobs: []int{j}})
			placed = len(machines) - 1
		}
		assign[j] = placed
	}

	s := core.NewSchedule(in)
	for range machines {
		s.OpenMachine()
	}
	// Replay in the scan order so the incremental busy-time accounting sees
	// the same insertion sequence as Schedule and the costs compare exactly.
	for _, j := range order {
		s.Assign(int(j), assign[j])
	}
	return s
}
