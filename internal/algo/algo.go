// Package algo defines the common shape of busy-time scheduling algorithms
// and a registry used by the CLI tools and the benchmark harness.
//
// Every algorithm consumes an instance and produces a complete feasible
// schedule; implementations live in sub-packages (firstfit, properfit,
// cliquealgo, boundedlength, exact, baselines, demand).
package algo

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"busytime/internal/core"
)

// Func is a scheduling algorithm: it must return a complete schedule that
// passes (*core.Schedule).Verify for any valid instance it accepts.
type Func func(*core.Instance) *core.Schedule

// CtxFunc is a context-aware scratch entry point: it observes ctx at its own
// checkpoints during the run and returns context.Cause(ctx)'s error when
// cancelled mid-search, instead of a schedule.
type CtxFunc func(context.Context, *core.Instance, *core.Scratch) (*core.Schedule, error)

// CancelPoint documents where a registered algorithm observes context
// cancellation. It is registry metadata for drivers: the batch engine and
// the public Solver check ctx between runs regardless; only CancelMidRun
// algorithms additionally stop inside a single run.
type CancelPoint int

const (
	// CancelAtBoundary marks an algorithm whose single run always completes:
	// it is polynomial and fast, so drivers observe ctx only between runs
	// (the engine's shard loop, the Solver's entry check).
	CancelAtBoundary CancelPoint = iota
	// CancelMidRun marks an algorithm with an unbounded-time search that
	// checkpoints ctx during the run via RunScratchCtx (the exact branch and
	// bound).
	CancelMidRun
)

// String returns the metadata label used in listings.
func (c CancelPoint) String() string {
	if c == CancelMidRun {
		return "mid-run"
	}
	return "run-boundary"
}

// Algorithm is a named scheduling algorithm with a short description.
type Algorithm struct {
	Name        string
	Description string
	Run         Func
	// RunScratch runs the algorithm drawing schedule state from the scratch
	// so batch drivers can recycle allocations across instances. Every
	// registered algorithm provides one, routed through the shared placement
	// kernel (core.Placer); the registry-wide differential suite pins each
	// RunScratch byte-identical to Run. The returned schedule is only valid
	// until the scratch's next use.
	RunScratch func(*core.Instance, *core.Scratch) *core.Schedule
	// RunScratchCtx, set exactly when Cancellation is CancelMidRun, is the
	// context-aware variant: identical output to RunScratch when ctx stays
	// live, a nil schedule and ctx's error when cancelled mid-run.
	RunScratchCtx CtxFunc
	// Cancellation records where the algorithm observes ctx; see CancelPoint.
	Cancellation CancelPoint
	// Decompose, when non-nil, declares the algorithm safe for the
	// component-decomposition layer (internal/decomp): running it on each
	// connected component of the interval graph independently and merging
	// the per-component schedules reproduces the sequential whole-instance
	// run exactly. The registry-wide differential suite pins decomposed ==
	// sequential bitwise for every algorithm that sets it.
	Decompose *Decomposer
}

// Decomposer is the decomposition contract of an algorithm: how to partition
// its processing order by component, how to solve one component against the
// parent instance, and how component-local machine indices map to global
// ones.
//
// The greedy family qualifies under the identity mapping: components are
// strictly time-disjoint, so during the sequential whole-instance run a
// machine's jobs from other components never constrain a job's feasibility
// or span delta — machine m's placements restricted to one component are
// exactly the component-local run's machine m. Algorithms with cross-job
// state that survives a component boundary (NextFit's cursor, local search's
// move passes, dynamic lookahead buffers) do not qualify and leave Decompose
// nil.
type Decomposer struct {
	// Order returns the algorithm's global processing order as job indices
	// (a cached instance order; the slice is not modified). nil means
	// position order 0..n-1.
	Order func(in *core.Instance) []int32
	// RunComponent solves one component against the parent instance: order
	// is the component's jobs as a subsequence of the global Order, sc is a
	// worker-private arena, and out (aligned with order) receives each job's
	// component-local machine. Machines must be opened densely from 0.
	RunComponent func(ctx context.Context, in *core.Instance, order []int32, sc *core.Scratch, out []int32) error
	// Stacked selects the merge mapping: false merges under the identity
	// (component-local machine j → global machine j, the greedy family);
	// true stacks components onto disjoint machine ranges in component
	// order (the exact solver, which opens fresh machines per component).
	Stacked bool
	// Stitch declares that RunComponent materializes its result as the live
	// schedule on the arena it was handed — one kernel placement per order
	// entry, in order (the ComponentLowestFit/ComponentBestFit family). The
	// decomposition layer then merges by adopting each component's machine
	// records and span pieces wholesale (core.Assembly.Graft/PutDelta)
	// instead of replaying every placement's span merge, still bitwise
	// identical to sequential. Decomposers that compute assignments out of
	// band (the exact search builds a sub-instance) leave it false and get
	// the ordinary Put replay.
	Stitch bool
	// Shard, when not ShardNone, additionally declares the algorithm safe
	// for opt-in time-axis sharding: the dominant (or only) component's time
	// axis is cut at low-crossing boundaries, the shards run through
	// RunComponent independently (its contract never assumed connectivity),
	// and the named rule places the withheld crossing jobs into the live
	// shard schedules during the sequential reconciliation pass. Sharded
	// results are valid but not bitwise-identical to sequential, so the
	// layer only takes this path when the caller opted in. Requires Stitch.
	Shard ShardRule
}

// ShardRule names the reconciliation rule of the time-sharding layer: how
// withheld crossing jobs are placed into the merged shard schedules.
type ShardRule int

const (
	// ShardNone marks an algorithm that does not support time-axis sharding.
	ShardNone ShardRule = iota
	// ShardLowestFit reconciles crossing jobs onto the lowest machine that
	// fits, scanning shards in time order (the FirstFit family's rule).
	ShardLowestFit
	// ShardBestFit reconciles crossing jobs onto the feasible machine with
	// the smallest busy-time increase across all shards, ties to the
	// earliest shard and lowest machine (the BestFit family's rule).
	ShardBestFit
)

// ComponentLowestFit is the shared RunComponent of the LowestFit-driven
// family (firstfit, firstfit-scan, firstfit-start, randomfit,
// online-firstfit): the component's jobs through the indexed kernel
// LowestFit on a schedule drawn from sc. The index prunings are sound, so
// indexed component runs merge byte-identical even to the sequential
// no-index scans. out (aligned with order) receives each job's
// component-local machine.
func ComponentLowestFit(_ context.Context, in *core.Instance, order []int32, sc *core.Scratch, out []int32) error {
	s := sc.NewSchedule(in)
	s.EnableMachineIndex()
	k := s.Placer()
	for i, j := range order {
		out[i] = int32(k.LowestFit(int(j)))
	}
	return nil
}

// ComponentBestFit is the shared RunComponent of the BestFit-driven family
// (bestfit, bestfit-scan, online-bestfit): the kernel's pruned span-delta
// argmin over the component's jobs.
func ComponentBestFit(_ context.Context, in *core.Instance, order []int32, sc *core.Scratch, out []int32) error {
	s := sc.NewSchedule(in)
	s.EnableMachineIndex()
	k := s.Placer()
	for i, j := range order {
		out[i] = int32(k.BestFit(int(j)))
	}
	return nil
}

var registry = map[string]Algorithm{}

// Register adds an algorithm to the global registry. It panics on duplicate
// names; registration happens in sub-package init functions.
func Register(a Algorithm) {
	if _, dup := registry[a.Name]; dup {
		panic(fmt.Sprintf("algo: duplicate registration of %q", a.Name))
	}
	if (a.Cancellation == CancelMidRun) != (a.RunScratchCtx != nil) {
		panic(fmt.Sprintf("algo: %q declares Cancellation=%v but RunScratchCtx=%v",
			a.Name, a.Cancellation, a.RunScratchCtx != nil))
	}
	registry[a.Name] = a
}

// Lookup returns the registered algorithm with the given name.
func Lookup(name string) (Algorithm, bool) {
	a, ok := registry[name]
	return a, ok
}

// All returns every registered algorithm sorted by name.
func All() []Algorithm {
	out := make([]Algorithm, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	slices.SortFunc(out, func(a, b Algorithm) int { return strings.Compare(a.Name, b.Name) })
	return out
}
