// Package algo defines the common shape of busy-time scheduling algorithms
// and a registry used by the CLI tools and the benchmark harness.
//
// Every algorithm consumes an instance and produces a complete feasible
// schedule; implementations live in sub-packages (firstfit, properfit,
// cliquealgo, boundedlength, exact, baselines, demand).
package algo

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"busytime/internal/core"
)

// Func is a scheduling algorithm: it must return a complete schedule that
// passes (*core.Schedule).Verify for any valid instance it accepts.
type Func func(*core.Instance) *core.Schedule

// CtxFunc is a context-aware scratch entry point: it observes ctx at its own
// checkpoints during the run and returns context.Cause(ctx)'s error when
// cancelled mid-search, instead of a schedule.
type CtxFunc func(context.Context, *core.Instance, *core.Scratch) (*core.Schedule, error)

// CancelPoint documents where a registered algorithm observes context
// cancellation. It is registry metadata for drivers: the batch engine and
// the public Solver check ctx between runs regardless; only CancelMidRun
// algorithms additionally stop inside a single run.
type CancelPoint int

const (
	// CancelAtBoundary marks an algorithm whose single run always completes:
	// it is polynomial and fast, so drivers observe ctx only between runs
	// (the engine's shard loop, the Solver's entry check).
	CancelAtBoundary CancelPoint = iota
	// CancelMidRun marks an algorithm with an unbounded-time search that
	// checkpoints ctx during the run via RunScratchCtx (the exact branch and
	// bound).
	CancelMidRun
)

// String returns the metadata label used in listings.
func (c CancelPoint) String() string {
	if c == CancelMidRun {
		return "mid-run"
	}
	return "run-boundary"
}

// Algorithm is a named scheduling algorithm with a short description.
type Algorithm struct {
	Name        string
	Description string
	Run         Func
	// RunScratch runs the algorithm drawing schedule state from the scratch
	// so batch drivers can recycle allocations across instances. Every
	// registered algorithm provides one, routed through the shared placement
	// kernel (core.Placer); the registry-wide differential suite pins each
	// RunScratch byte-identical to Run. The returned schedule is only valid
	// until the scratch's next use.
	RunScratch func(*core.Instance, *core.Scratch) *core.Schedule
	// RunScratchCtx, set exactly when Cancellation is CancelMidRun, is the
	// context-aware variant: identical output to RunScratch when ctx stays
	// live, a nil schedule and ctx's error when cancelled mid-run.
	RunScratchCtx CtxFunc
	// Cancellation records where the algorithm observes ctx; see CancelPoint.
	Cancellation CancelPoint
}

var registry = map[string]Algorithm{}

// Register adds an algorithm to the global registry. It panics on duplicate
// names; registration happens in sub-package init functions.
func Register(a Algorithm) {
	if _, dup := registry[a.Name]; dup {
		panic(fmt.Sprintf("algo: duplicate registration of %q", a.Name))
	}
	if (a.Cancellation == CancelMidRun) != (a.RunScratchCtx != nil) {
		panic(fmt.Sprintf("algo: %q declares Cancellation=%v but RunScratchCtx=%v",
			a.Name, a.Cancellation, a.RunScratchCtx != nil))
	}
	registry[a.Name] = a
}

// Lookup returns the registered algorithm with the given name.
func Lookup(name string) (Algorithm, bool) {
	a, ok := registry[name]
	return a, ok
}

// All returns every registered algorithm sorted by name.
func All() []Algorithm {
	out := make([]Algorithm, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	slices.SortFunc(out, func(a, b Algorithm) int { return strings.Compare(a.Name, b.Name) })
	return out
}
