package exact

import (
	"math"
	"testing"
	"testing/quick"

	"busytime/internal/algo"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
)

func iv(s, e float64) interval.Interval { return interval.New(s, e) }

func TestRegistered(t *testing.T) {
	if _, ok := algo.Lookup("exact"); !ok {
		t.Fatal("exact not registered")
	}
}

func TestEmptyAndSingle(t *testing.T) {
	s, err := Solve(core.NewInstance(2))
	if err != nil || s.Cost() != 0 {
		t.Errorf("empty: %v cost=%v", err, s.Cost())
	}
	s, err = Solve(core.NewInstance(1, iv(3, 7)))
	if err != nil || s.Cost() != 4 {
		t.Errorf("single: %v cost=%v", err, s.Cost())
	}
}

func TestKnownOptimum(t *testing.T) {
	// Fig. 4 with g = 2, ε′ = 0.1: OPT = g+1 = 3.
	in, _ := generator.Fig4(2, 0.1)
	s, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if math.Abs(s.Cost()-3) > 1e-9 {
		t.Errorf("OPT = %v, want 3", s.Cost())
	}
}

func TestDisjointJobsOneMachine(t *testing.T) {
	in := core.NewInstance(1, iv(0, 1), iv(2, 3), iv(5, 8))
	c, err := Cost(in)
	if err != nil {
		t.Fatal(err)
	}
	if c != 5 {
		t.Errorf("OPT = %v, want 5 (total length, one machine)", c)
	}
}

func TestOverlappingPairGOne(t *testing.T) {
	// g=1: two overlapping jobs must split; OPT = sum of lengths.
	in := core.NewInstance(1, iv(0, 3), iv(1, 4))
	c, err := Cost(in)
	if err != nil {
		t.Fatal(err)
	}
	if c != 6 {
		t.Errorf("OPT = %v, want 6", c)
	}
}

func TestGTwoSharesMachine(t *testing.T) {
	in := core.NewInstance(2, iv(0, 3), iv(1, 4))
	c, err := Cost(in)
	if err != nil {
		t.Fatal(err)
	}
	if c != 4 {
		t.Errorf("OPT = %v, want 4 (span, one machine)", c)
	}
}

func TestComponentLimit(t *testing.T) {
	// 25 mutually overlapping jobs exceed the component limit.
	ivs := make([]interval.Interval, 25)
	for i := range ivs {
		ivs[i] = iv(0, 10)
	}
	if _, err := SolveMax(core.NewInstance(3, ivs...), 10); err == nil {
		t.Error("oversized component accepted")
	}
	// But 25 disjoint jobs decompose into 25 singleton components: fine.
	for i := range ivs {
		ivs[i] = iv(float64(3*i), float64(3*i+1))
	}
	if _, err := SolveMax(core.NewInstance(3, ivs...), 10); err != nil {
		t.Errorf("disjoint jobs rejected: %v", err)
	}
}

func TestBruteForceAgreement(t *testing.T) {
	// Compare against exhaustive set-partition enumeration on tiny cases.
	for seed := int64(0); seed < 50; seed++ {
		in := generator.General(seed, 6, 2, 12, 6)
		want := bruteForce(in)
		got, err := Cost(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("seed %d: exact %v != brute %v", seed, got, want)
		}
	}
}

// bruteForce enumerates every assignment in restricted-growth form.
func bruteForce(in *core.Instance) float64 {
	n := in.N()
	assign := make([]int, n)
	best := math.Inf(1)
	var rec func(i, used int)
	rec = func(i, used int) {
		if i == n {
			cost, ok := costOf(in, assign, used)
			if ok && cost < best {
				best = cost
			}
			return
		}
		for m := 0; m <= used; m++ {
			assign[i] = m
			nu := used
			if m == used {
				nu++
			}
			rec(i+1, nu)
		}
	}
	rec(0, 0)
	return best
}

func costOf(in *core.Instance, assign []int, used int) (float64, bool) {
	var total float64
	for m := 0; m < used; m++ {
		var set interval.Set
		var jobs []int
		for j, mm := range assign {
			if mm == m {
				set = append(set, in.Jobs[j].Iv)
				jobs = append(jobs, j)
			}
		}
		if set.MaxDepth() > in.G {
			return 0, false
		}
		_ = jobs
		total += set.Span()
	}
	return total, true
}

func TestQuickOptAtMostFirstFit(t *testing.T) {
	f := func(seed int64, gg uint8) bool {
		g := int(gg%3) + 1
		in := generator.General(seed, 8, g, 20, 8)
		opt, err := Cost(in)
		if err != nil {
			return false
		}
		ff := firstfit.Schedule(in).Cost()
		lb := core.BestBound(in)
		return opt <= ff+1e-9 && opt >= lb-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickOptimalIsFeasible(t *testing.T) {
	f := func(seed int64) bool {
		in := generator.General(seed, 9, 2, 25, 9)
		s, err := Solve(in)
		if err != nil {
			return false
		}
		return s.Verify() == nil && s.Complete()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDemandsExact(t *testing.T) {
	// Two overlapping demand-2 jobs with g = 2 cannot share: OPT = 6.
	in := core.NewInstance(2, iv(0, 3), iv(1, 4))
	in.Jobs[0].Demand = 2
	in.Jobs[1].Demand = 2
	c, err := Cost(in)
	if err != nil {
		t.Fatal(err)
	}
	if c != 6 {
		t.Errorf("OPT = %v, want 6", c)
	}
}

func TestSubtract(t *testing.T) {
	covered := interval.Set{iv(1, 2), iv(4, 6)}
	got := subtract(iv(0, 7), covered)
	want := interval.Set{iv(0, 1), iv(2, 4), iv(6, 7)}
	if len(got) != len(want) {
		t.Fatalf("subtract = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("piece %d = %v, want %v", i, got[i], want[i])
		}
	}
	if pieces := subtract(iv(1, 2), interval.Set{iv(0, 5)}); len(pieces) != 0 {
		t.Errorf("fully covered interval left %v", pieces)
	}
	if pieces := subtract(iv(1, 2), nil); len(pieces) != 1 || pieces[0] != iv(1, 2) {
		t.Errorf("uncovered interval = %v", pieces)
	}
}

func BenchmarkExact10Jobs(b *testing.B) {
	in := generator.General(3, 10, 2, 20, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(in); err != nil {
			b.Fatal(err)
		}
	}
}
