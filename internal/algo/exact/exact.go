// Package exact computes optimal busy-time schedules by branch and bound.
// It is the yardstick the benchmark harness measures approximation ratios
// against: the problem is NP-hard already for g = 2 (Winkler & Zhang), so
// exact solving is reserved for small instances.
//
// The search enumerates set partitions in restricted-growth form (a job may
// open only the next new machine), processes jobs in start-time order so
// capacity and cost updates are O(1) amortized, warm-starts from FirstFit,
// and prunes with an admissible bound: accrued cost plus the fractional
// lower bound of the remaining jobs restricted to time not yet covered by
// any open machine.
package exact

import (
	"cmp"
	"context"
	"fmt"
	"math"
	"slices"

	"busytime/internal/algo"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/interval"
)

func init() {
	algo.Register(algo.Algorithm{
		Name:        "exact",
		Description: "optimal schedule by branch and bound (small instances only)",
		Run: func(in *core.Instance) *core.Schedule {
			s, err := Solve(in)
			if err != nil {
				panic(err)
			}
			return s
		},
		RunScratch: func(in *core.Instance, sc *core.Scratch) *core.Schedule {
			s, err := SolveScratch(in, sc)
			if err != nil {
				panic(err)
			}
			return s
		},
		RunScratchCtx: func(ctx context.Context, in *core.Instance, sc *core.Scratch) (*core.Schedule, error) {
			return SolveWith(ctx, in, DefaultMaxJobs, sc)
		},
		Cancellation: algo.CancelMidRun,
		Decompose:    Decomposer(DefaultMaxJobs),
	})
}

// Decomposer declares the branch and bound safe for the decomposition layer
// with the given per-component job limit: SolveWith already is a
// decompose–solve–merge (it iterates Instance.Components sequentially), so
// the layer merely runs the same per-component searches concurrently.
// Stacked merging reproduces SolveWith's machineBase accumulation — each
// component's machines offset by the counts of the components before it, in
// component start order — and the position-order replay (Order nil)
// reproduces FromAssignment's materialization bit for bit. solveComponent's
// result is independent of its input job order (it canonicalizes to (start,
// end, ID) internally), so the partition is the only thing that matters, and
// both paths use the same reach sweep.
func Decomposer(maxJobs int) *algo.Decomposer {
	return &algo.Decomposer{
		Stacked: true,
		RunComponent: func(ctx context.Context, in *core.Instance, order []int32, sc *core.Scratch, out []int32) error {
			if len(order) > maxJobs {
				return fmt.Errorf("exact: component with %d jobs exceeds limit %d", len(order), maxJobs)
			}
			jobs := make([]core.Job, len(order))
			for i, j := range order {
				jobs[i] = in.Jobs[j]
			}
			comp := &core.Instance{Name: in.Name + "/comp", G: in.G, Jobs: jobs}
			sub, err := solveComponent(ctx, comp)
			if err != nil {
				return err
			}
			for i, m := range sub.assign {
				out[i] = int32(m)
			}
			return nil
		},
	}
}

// DefaultMaxJobs is the largest component size Solve accepts by default.
const DefaultMaxJobs = 18

// Solve returns an optimal schedule. It decomposes the instance into
// connected components (optimal per component is optimal overall) and errors
// if any component exceeds DefaultMaxJobs jobs.
func Solve(in *core.Instance) (*core.Schedule, error) {
	return SolveWith(context.Background(), in, DefaultMaxJobs, nil)
}

// SolveScratch is Solve with the final schedule materialized from sc through
// the placement kernel (the search itself still builds transient state). The
// returned schedule is only valid until sc's next use.
func SolveScratch(in *core.Instance, sc *core.Scratch) (*core.Schedule, error) {
	return SolveWith(context.Background(), in, DefaultMaxJobs, sc)
}

// SolveMax is Solve with an explicit per-component job limit.
func SolveMax(in *core.Instance, maxJobs int) (*core.Schedule, error) {
	return SolveWith(context.Background(), in, maxJobs, nil)
}

// SolveWith is the general entry point: branch and bound with an explicit
// per-component job limit, cooperative ctx checkpoints inside the search
// (every few thousand nodes and between components — the search is the
// library's only per-run unbounded-time path), and the final schedule drawn
// from sc when non-nil. Cancelling ctx makes the search unwind promptly and
// SolveWith return ctx's error.
func SolveWith(ctx context.Context, in *core.Instance, maxJobs int, sc *core.Scratch) (*core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if maxJobs < 1 {
		return nil, fmt.Errorf("exact: component job limit %d, want ≥ 1", maxJobs)
	}
	assignment := make(map[int]int, in.N())
	machineBase := 0
	for _, comp := range in.Components() {
		if comp.N() > maxJobs {
			return nil, fmt.Errorf("exact: component with %d jobs exceeds limit %d", comp.N(), maxJobs)
		}
		if err := context.Cause(ctx); err != nil {
			return nil, err
		}
		sub, err := solveComponent(ctx, comp)
		if err != nil {
			return nil, err
		}
		used := 0
		for j, m := range sub.assign {
			assignment[comp.Jobs[j].ID] = machineBase + m
			if m+1 > used {
				used = m + 1
			}
		}
		machineBase += used
	}
	if in.N() == 0 {
		return core.NewScheduleFrom(in, sc), nil
	}
	var s *core.Schedule
	var err error
	if sc != nil {
		s, err = core.FromAssignmentScratch(in, assignment, sc)
	} else {
		s, err = core.FromAssignment(in, assignment)
	}
	if err != nil {
		return nil, err
	}
	if err := s.Verify(); err != nil {
		return nil, fmt.Errorf("exact: produced infeasible schedule: %w", err)
	}
	return s, nil
}

// Cost returns only the optimal cost. Convenience for ratio computations.
func Cost(in *core.Instance) (float64, error) {
	s, err := Solve(in)
	if err != nil {
		return 0, err
	}
	return s.Cost(), nil
}

// solution is the per-component result: assign[i] is the machine of the
// component's i-th job (component job order).
type solution struct {
	assign []int
	cost   float64
}

type machine struct {
	pieces []interval.Interval // sorted, disjoint busy pieces
	load   []jobRef            // assigned jobs (for capacity checks)
}

type jobRef struct {
	end    float64
	demand int
}

type searcher struct {
	jobs    []core.Job // sorted by start
	g       int
	best    float64
	bestFit []int
	cur     []int
	mach    []*machine
	cost    float64
	// ctx cancellation: the search polls ctx.Done() every cancelStride nodes
	// (a select per node would dominate the O(1) capacity updates) and sets
	// stopped, which unwinds the recursion without exploring further nodes.
	ctx     context.Context
	tick    uint
	stopped bool
}

// cancelStride is how many search nodes pass between ctx polls: frequent
// enough that cancellation lands in well under a millisecond, sparse enough
// to stay invisible next to the per-node bound computation.
const cancelStride = 1024

// solveComponent finds an optimal assignment of one connected component; it
// returns ctx's error when the search was cancelled mid-run.
func solveComponent(ctx context.Context, comp *core.Instance) (solution, error) {
	n := comp.N()
	if n == 0 {
		return solution{}, nil
	}
	// Sort jobs by start; remember the permutation to report in job order.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	slices.SortFunc(perm, func(a, b int) int {
		ja, jb := comp.Jobs[a], comp.Jobs[b]
		if ja.Iv.Start != jb.Iv.Start {
			if ja.Iv.Start < jb.Iv.Start {
				return -1
			}
			return 1
		}
		if ja.Iv.End != jb.Iv.End {
			if ja.Iv.End < jb.Iv.End {
				return -1
			}
			return 1
		}
		return cmp.Compare(ja.ID, jb.ID)
	})
	sorted := make([]core.Job, n)
	for i, p := range perm {
		sorted[i] = comp.Jobs[p]
	}
	// Warm start from FirstFit.
	ff := firstfit.Schedule(comp)
	se := &searcher{
		jobs: sorted,
		g:    comp.G,
		best: ff.Cost() + 1e-9,
		cur:  make([]int, n),
		ctx:  ctx,
	}
	se.bestFit = nil
	se.search(0)
	if se.stopped {
		return solution{}, context.Cause(ctx)
	}
	assign := make([]int, n)
	if se.bestFit == nil {
		// FirstFit was already optimal; translate its assignment.
		for i, p := range perm {
			assign[p] = ff.MachineOf(p)
			_ = i
		}
		return solution{assign: assign, cost: ff.Cost()}, nil
	}
	for i, p := range perm {
		assign[p] = se.bestFit[i]
	}
	return solution{assign: assign, cost: se.best}, nil
}

func (se *searcher) search(i int) {
	if se.tick++; se.tick%cancelStride == 0 {
		select {
		case <-se.ctx.Done():
			se.stopped = true
		default:
		}
	}
	if se.stopped {
		return
	}
	if i == len(se.jobs) {
		if se.cost < se.best {
			se.best = se.cost
			se.bestFit = append(se.bestFit[:0], se.cur...)
		}
		return
	}
	if se.cost >= se.best {
		return
	}
	if se.cost+se.remainingBound(i) >= se.best {
		return
	}
	job := se.jobs[i]
	// Existing machines in index order.
	for m, mc := range se.mach {
		if !mc.fits(job, se.g) {
			continue
		}
		undo := mc.add(job)
		se.cost += undo.delta
		se.cur[i] = m
		se.search(i + 1)
		se.cost -= undo.delta
		mc.undo(undo)
	}
	// Open the next new machine (restricted growth: only one new branch).
	nm := &machine{}
	undo := nm.add(job)
	se.mach = append(se.mach, nm)
	se.cost += undo.delta
	se.cur[i] = len(se.mach) - 1
	se.search(i + 1)
	se.cost -= undo.delta
	se.mach = se.mach[:len(se.mach)-1]
}

// fits reports whether job can join the machine without exceeding capacity.
// All previously assigned jobs start no later than job.Iv.Start, so the
// demand-weighted depth of the union within the job's window is maximized at
// its start: it suffices to sum the demands of assigned jobs still active
// there (closed semantics: end ≥ start counts).
func (mc *machine) fits(job core.Job, g int) bool {
	used := 0
	for _, r := range mc.load {
		if r.end >= job.Iv.Start {
			used += r.demand
		}
	}
	return used+job.Demand <= g
}

// undoRec captures the state needed to revert one add.
type undoRec struct {
	delta    float64
	appended bool    // a new piece was appended
	oldEnd   float64 // previous end of the last piece (when merged)
}

// add appends the job (jobs arrive in non-decreasing start order) and
// returns the undo record. Busy pieces stay sorted and disjoint.
func (mc *machine) add(job core.Job) undoRec {
	mc.load = append(mc.load, jobRef{end: job.Iv.End, demand: job.Demand})
	s, c := job.Iv.Start, job.Iv.End
	if n := len(mc.pieces); n > 0 && s <= mc.pieces[n-1].End {
		last := &mc.pieces[n-1]
		old := last.End
		if c > last.End {
			last.End = c
		}
		return undoRec{delta: last.End - old, appended: false, oldEnd: old}
	}
	mc.pieces = append(mc.pieces, interval.Interval{Start: s, End: c})
	return undoRec{delta: c - s, appended: true}
}

func (mc *machine) undo(u undoRec) {
	mc.load = mc.load[:len(mc.load)-1]
	if u.appended {
		mc.pieces = mc.pieces[:len(mc.pieces)-1]
		return
	}
	mc.pieces[len(mc.pieces)-1].End = u.oldEnd
}

// remainingBound is an admissible lower bound on the extra cost the
// unassigned jobs i.. will force: over time not covered by any open
// machine's busy pieces, every instant with demand-weighted remaining depth
// d costs at least ⌈d/g⌉ additional machine-time (an open machine extending
// into that region pays for it beyond the accrued cost, as does a new one).
func (se *searcher) remainingBound(i int) float64 {
	if i >= len(se.jobs) {
		return 0
	}
	var covered interval.Set
	for _, mc := range se.mach {
		covered = append(covered, mc.pieces...)
	}
	covered = covered.Union()
	type ev struct {
		t     float64
		delta int
	}
	var evs []ev
	for _, job := range se.jobs[i:] {
		for _, piece := range subtract(job.Iv, covered) {
			if piece.IsPoint() {
				continue
			}
			evs = append(evs, ev{piece.Start, job.Demand}, ev{piece.End, -job.Demand})
		}
	}
	if len(evs) == 0 {
		return 0
	}
	slices.SortFunc(evs, func(a, b ev) int {
		if a.t != b.t {
			if a.t < b.t {
				return -1
			}
			return 1
		}
		return a.delta - b.delta
	})
	g := float64(se.g)
	var total float64
	depth := 0
	prev := evs[0].t
	for _, e := range evs {
		if e.t > prev && depth > 0 {
			total += math.Ceil(float64(depth)/g) * (e.t - prev)
		}
		if e.t > prev {
			prev = e.t
		}
		depth += e.delta
	}
	return total
}

// subtract returns iv minus the sorted disjoint set covered.
func subtract(iv interval.Interval, covered interval.Set) interval.Set {
	var out interval.Set
	cur := iv
	for _, c := range covered {
		if c.End <= cur.Start {
			continue
		}
		if c.Start >= cur.End {
			break
		}
		if c.Start > cur.Start {
			out = append(out, interval.Interval{Start: cur.Start, End: c.Start})
		}
		if c.End >= cur.End {
			return out
		}
		cur.Start = c.End
	}
	if cur.End > cur.Start {
		out = append(out, cur)
	}
	return out
}
