// Package laminar solves busy-time scheduling exactly, in polynomial time,
// on laminar instances — families in which any two job intervals are either
// nested or disjoint (and, under this library's closed semantics, disjoint
// means not even touching). The paper's follow-up literature ([15], cited in
// §1.3) singles out laminar families as an exactly solvable special case;
// this package implements the level-grouping algorithm with a short proof:
//
// In a laminar family the jobs active at any instant form a nesting chain,
// so the depth N_t equals the nesting level. Assign every job of nesting
// level ℓ to machine ⌈ℓ/g⌉. Each machine then runs at most g levels, whose
// jobs form chains at every instant — capacity is respected. Machine i is
// busy exactly where N_t ≥ (i−1)g+1, hence
//
//	cost = Σ_i measure{t : N_t ≥ (i−1)g+1} = ∫ ⌈N_t/g⌉ dt,
//
// which is the fractional lower bound — no schedule can do better
// (Observation 1.1 generalized), so the schedule is optimal.
package laminar

import (
	"fmt"
	"slices"

	"busytime/internal/algo"
	"busytime/internal/core"
	"busytime/internal/interval"
)

func init() {
	algo.Register(algo.Algorithm{
		Name:        "laminar",
		Description: "exact level-grouping for laminar instances (optimal, polynomial)",
		Run: func(in *core.Instance) *core.Schedule {
			s, err := Schedule(in)
			if err != nil {
				panic(err)
			}
			return s
		},
		RunScratch: func(in *core.Instance, sc *core.Scratch) *core.Schedule {
			s, err := ScheduleScratch(in, sc)
			if err != nil {
				panic(err)
			}
			return s
		},
	})
}

// IsLaminar reports whether every pair of intervals is nested or strictly
// disjoint (touching pairs count as overlapping, hence non-laminar, matching
// the library's closed capacity semantics).
func IsLaminar(set interval.Set) bool {
	for i := range set {
		for j := i + 1; j < len(set); j++ {
			a, b := set[i], set[j]
			if !a.Overlaps(b) {
				continue
			}
			if !a.ContainsInterval(b) && !b.ContainsInterval(a) {
				return false
			}
		}
	}
	return true
}

// Levels returns the nesting level (1-based) of every interval of a laminar
// set: 1 for roots, parent level + 1 for children. Equal intervals form a
// chain in input-index order.
func Levels(set interval.Set) []int {
	n := len(set)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Parents first: by start ascending, then end descending, then index.
	slices.SortFunc(order, func(a, b int) int {
		ia, ib := set[a], set[b]
		if ia.Start != ib.Start {
			if ia.Start < ib.Start {
				return -1
			}
			return 1
		}
		if ia.End != ib.End {
			if ia.End > ib.End {
				return -1
			}
			return 1
		}
		return a - b
	})
	levels := make([]int, n)
	type open struct {
		end   float64
		level int
	}
	var stack []open
	for _, idx := range order {
		iv := set[idx]
		// Pop ancestors that ended strictly before this interval starts.
		// An ancestor with end == start would be touching, which laminarity
		// already rules out for non-nested pairs; a true ancestor has
		// end ≥ iv.End ≥ iv.Start, so popping on end < start is safe.
		for len(stack) > 0 && stack[len(stack)-1].end < iv.Start {
			stack = stack[:len(stack)-1]
		}
		lvl := 1
		if len(stack) > 0 {
			lvl = stack[len(stack)-1].level + 1
		}
		levels[idx] = lvl
		stack = append(stack, open{end: iv.End, level: lvl})
	}
	return levels
}

// Schedule returns an optimal schedule of a laminar instance by assigning
// nesting level ℓ to machine ⌈ℓ/g⌉. It errors when the instance is not
// laminar. The result's cost equals core.FractionalBound(in).
func Schedule(in *core.Instance) (*core.Schedule, error) {
	return schedule(in, nil)
}

// ScheduleScratch is Schedule drawing schedule state from sc. The returned
// schedule is only valid until sc's next use.
func ScheduleScratch(in *core.Instance, sc *core.Scratch) (*core.Schedule, error) {
	return schedule(in, sc)
}

func schedule(in *core.Instance, sc *core.Scratch) (*core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	for _, j := range in.Jobs {
		if j.Demand != 1 {
			return nil, fmt.Errorf("laminar: job %d has demand %d; level grouping needs unit demands",
				j.ID, j.Demand)
		}
	}
	set := in.Set()
	if !IsLaminar(set) {
		return nil, fmt.Errorf("laminar: instance %q is not laminar", in.Name)
	}
	levels := Levels(set)
	maxLevel := 0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	s := core.NewScheduleFrom(in, sc)
	k := s.Placer()
	numMachines := (maxLevel + in.G - 1) / in.G
	for m := 0; m < numMachines; m++ {
		k.OpenMachine()
	}
	for j, l := range levels {
		k.Place(j, (l-1)/in.G)
	}
	if err := s.Verify(); err != nil {
		return nil, fmt.Errorf("laminar: produced infeasible schedule: %w", err)
	}
	return s, nil
}
