package laminar

import (
	"math"
	"testing"
	"testing/quick"

	"busytime/internal/algo"
	"busytime/internal/algo/exact"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
)

func iv(s, e float64) interval.Interval { return interval.New(s, e) }

func TestRegistered(t *testing.T) {
	if _, ok := algo.Lookup("laminar"); !ok {
		t.Fatal("laminar not registered")
	}
}

func TestIsLaminar(t *testing.T) {
	cases := []struct {
		name string
		set  interval.Set
		want bool
	}{
		{"nested chain", interval.Set{iv(0, 10), iv(1, 9), iv(2, 8)}, true},
		{"disjoint", interval.Set{iv(0, 1), iv(2, 3)}, true},
		{"crossing", interval.Set{iv(0, 5), iv(3, 8)}, false},
		{"touching siblings", interval.Set{iv(0, 1), iv(1, 2)}, false},
		{"forest", interval.Set{iv(0, 4), iv(1, 2), iv(5, 9), iv(6, 7)}, true},
		{"equal intervals", interval.Set{iv(0, 3), iv(0, 3)}, true},
		{"empty", interval.Set{}, true},
	}
	for _, tc := range cases {
		if got := IsLaminar(tc.set); got != tc.want {
			t.Errorf("%s: IsLaminar = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestLevels(t *testing.T) {
	set := interval.Set{iv(0, 10), iv(1, 4), iv(2, 3), iv(5, 9), iv(6, 7), iv(20, 22)}
	want := []int{1, 2, 3, 2, 3, 1}
	got := Levels(set)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("level[%d] = %d, want %d (set %v)", i, got[i], want[i], set[i])
		}
	}
}

func TestLevelsEqualIntervalsChain(t *testing.T) {
	set := interval.Set{iv(0, 3), iv(0, 3), iv(0, 3)}
	got := Levels(set)
	seen := map[int]bool{}
	for _, l := range got {
		if seen[l] {
			t.Fatalf("duplicate level in chain: %v", got)
		}
		seen[l] = true
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Errorf("levels = %v, want a 1-2-3 chain", got)
	}
}

func TestScheduleAchievesFractionalBound(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		in := generator.Laminar(seed, 2, 3, 3, 4, 20)
		s, err := Schedule(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		lb := core.FractionalBound(in)
		if math.Abs(s.Cost()-lb) > 1e-9 {
			t.Errorf("seed %d: cost %v != fractional bound %v (optimality proof violated)",
				seed, s.Cost(), lb)
		}
	}
}

func TestScheduleMatchesExactOnSmall(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		in := generator.Laminar(seed, 2, 2, 2, 3, 10)
		if in.N() > 14 {
			continue
		}
		s, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := exact.Cost(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.Cost()-opt) > 1e-9 {
			t.Errorf("seed %d: laminar %v != exact %v", seed, s.Cost(), opt)
		}
	}
}

func TestScheduleBeatsOrMatchesFirstFit(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		in := generator.Laminar(seed, 3, 3, 3, 4, 16)
		s, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		ff := firstfit.Schedule(in)
		if s.Cost() > ff.Cost()+1e-9 {
			t.Errorf("seed %d: optimal laminar %v worse than FirstFit %v",
				seed, s.Cost(), ff.Cost())
		}
	}
}

func TestRejectsNonLaminar(t *testing.T) {
	in := core.NewInstance(2, iv(0, 5), iv(3, 8))
	if _, err := Schedule(in); err == nil {
		t.Error("crossing instance accepted")
	}
}

func TestRejectsDemands(t *testing.T) {
	in := core.NewInstance(2, iv(0, 5), iv(1, 2))
	in.Jobs[0].Demand = 2
	if _, err := Schedule(in); err == nil {
		t.Error("weighted instance accepted")
	}
}

func TestEmptyInstance(t *testing.T) {
	s, err := Schedule(core.NewInstance(2))
	if err != nil || s.Cost() != 0 {
		t.Errorf("empty: %v cost=%v", err, s.Cost())
	}
}

func TestQuickGeneratorProducesLaminar(t *testing.T) {
	f := func(seed int64, rr uint8) bool {
		in := generator.Laminar(seed, 2, int(rr%4)+1, 3, 4, 15)
		return IsLaminar(in.Set()) && in.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickOptimalityOnRandomLaminar(t *testing.T) {
	f := func(seed int64, gg uint8) bool {
		g := int(gg%4) + 1
		in := generator.Laminar(seed, g, 2, 3, 5, 25)
		s, err := Schedule(in)
		if err != nil {
			return false
		}
		return math.Abs(s.Cost()-core.FractionalBound(in)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLaminar(b *testing.B) {
	in := generator.Laminar(7, 3, 5, 4, 6, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(in); err != nil {
			b.Fatal(err)
		}
	}
}
