// Package portfolio provides the "just schedule it well" entry point: it
// runs every applicable algorithm of the library on the instance — the
// paper's FirstFit always; the proper greedy, the clique algorithm, the
// laminar exact solver and Bounded_Length when the instance is in their
// class; the exact solver when the instance is small — applies the
// move/merge local search to the best candidate, and returns the cheapest
// feasible schedule found.
//
// The portfolio inherits the strongest guarantee that applies: at worst
// 4·OPT everywhere (FirstFit, Theorem 2.1), 2·OPT on proper and clique
// instances, optimal on laminar and on exactly solvable instances.
package portfolio

import (
	"fmt"

	"busytime/internal/algo"
	"busytime/internal/algo/baselines"
	"busytime/internal/algo/boundedlength"
	"busytime/internal/algo/cliquealgo"
	"busytime/internal/algo/exact"
	"busytime/internal/algo/firstfit"
	"busytime/internal/algo/laminar"
	"busytime/internal/algo/localsearch"
	"busytime/internal/algo/properfit"
	"busytime/internal/core"
)

func init() {
	algo.Register(algo.Algorithm{
		Name:        "portfolio",
		Description: "best of all applicable algorithms plus local search",
		Run: func(in *core.Instance) *core.Schedule {
			s, _, err := Schedule(in)
			if err != nil {
				panic(err)
			}
			return s
		},
		// The portfolio keeps several candidate schedules alive at once, so
		// none of them can draw from the single-live-schedule scratch; every
		// candidate is itself kernel-routed, and the scratch is simply
		// unused. Registered so batch drivers can dispatch the portfolio
		// uniformly with every other algorithm.
		RunScratch: func(in *core.Instance, _ *core.Scratch) *core.Schedule {
			s, _, err := Schedule(in)
			if err != nil {
				panic(err)
			}
			return s
		},
	})
}

// ExactLimit is the instance size up to which the portfolio also tries the
// exponential exact solver.
const ExactLimit = 14

// Schedule returns the cheapest schedule found and the name of the
// algorithm that produced it (suffixed with "+ls" when local search
// improved it).
func Schedule(in *core.Instance) (*core.Schedule, string, error) {
	if err := in.Validate(); err != nil {
		return nil, "", err
	}
	type candidate struct {
		name string
		s    *core.Schedule
	}
	cands := []candidate{
		{"firstfit", firstfit.Schedule(in)},
		{"bestfit", baselines.BestFit(in)},
	}
	unitDemands := true
	for _, j := range in.Jobs {
		if j.Demand != 1 {
			unitDemands = false
			break
		}
	}
	if unitDemands {
		cands = append(cands, candidate{"machine-min", baselines.MachineMin(in)})
	}
	if in.IsProper() {
		cands = append(cands, candidate{"properfit", properfit.Schedule(in)})
	}
	if in.N() > 0 && in.IsClique() {
		if s, err := cliquealgo.Schedule(in); err == nil {
			cands = append(cands, candidate{"clique", s})
		}
	}
	if unitDemands && laminar.IsLaminar(in.Set()) {
		if s, err := laminar.Schedule(in); err == nil {
			cands = append(cands, candidate{"laminar", s})
		}
	}
	if s, err := boundedlength.Schedule(in, boundedlength.Options{}); err == nil {
		cands = append(cands, candidate{"boundedlength", s})
	}
	if in.N() <= ExactLimit {
		if s, err := exact.Solve(in); err == nil {
			cands = append(cands, candidate{"exact", s})
		}
	}

	best := cands[0]
	for _, c := range cands[1:] {
		if c.s.Cost() < best.s.Cost() {
			best = c
		}
	}
	improved, err := localsearch.Improve(best.s, localsearch.Options{})
	if err != nil {
		return nil, "", fmt.Errorf("portfolio: local search: %w", err)
	}
	name := best.name
	if improved.Cost() < best.s.Cost()-1e-12 {
		name += "+ls"
		best.s = improved
	}
	if err := best.s.Verify(); err != nil {
		return nil, "", fmt.Errorf("portfolio: winner infeasible: %w", err)
	}
	return best.s, name, nil
}
