package portfolio

import (
	"math"
	"testing"
	"testing/quick"

	"busytime/internal/algo"
	"busytime/internal/algo/exact"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/generator"
)

func TestRegistered(t *testing.T) {
	if _, ok := algo.Lookup("portfolio"); !ok {
		t.Fatal("portfolio not registered")
	}
}

func TestNeverWorseThanFirstFit(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		in := generator.General(seed, 30, 3, 30, 10)
		s, name, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		if name == "" {
			t.Error("empty winner name")
		}
		if ff := firstfit.Schedule(in); s.Cost() > ff.Cost()+1e-9 {
			t.Errorf("seed %d: portfolio %v worse than firstfit %v", seed, s.Cost(), ff.Cost())
		}
	}
}

func TestOptimalOnSmallInstances(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		in := generator.General(seed, 10, 2, 18, 7)
		s, _, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := exact.Cost(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.Cost()-opt) > 1e-9 {
			t.Errorf("seed %d: portfolio %v != OPT %v on exactly solvable size",
				seed, s.Cost(), opt)
		}
	}
}

func TestOptimalOnLaminar(t *testing.T) {
	in := generator.Laminar(3, 2, 3, 3, 4, 20)
	s, _, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Cost()-core.FractionalBound(in)) > 1e-9 {
		t.Errorf("portfolio missed the laminar optimum: %v vs %v",
			s.Cost(), core.FractionalBound(in))
	}
}

func TestHandlesDemands(t *testing.T) {
	base := generator.General(5, 20, 4, 25, 8)
	in := generator.WithDemands(base, 6, 4)
	s, _, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyInstance(t *testing.T) {
	s, _, err := Schedule(core.NewInstance(2))
	if err != nil || s.Cost() != 0 {
		t.Errorf("empty: %v cost=%v", err, s.Cost())
	}
}

func TestRejectsInvalid(t *testing.T) {
	if _, _, err := Schedule(&core.Instance{G: 0}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestQuickFeasibleAndAboveLB(t *testing.T) {
	f := func(seed int64, nn, gg uint8) bool {
		in := generator.General(seed, int(nn%20)+1, int(gg%3)+1, 25, 8)
		s, _, err := Schedule(in)
		if err != nil {
			return false
		}
		return s.Verify() == nil && s.Cost() >= core.BestBound(in)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPortfolio100(b *testing.B) {
	in := generator.General(7, 100, 3, 80, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Schedule(in); err != nil {
			b.Fatal(err)
		}
	}
}
