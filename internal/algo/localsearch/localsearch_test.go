package localsearch

import (
	"testing"
	"testing/quick"

	"busytime/internal/algo/baselines"
	"busytime/internal/algo/exact"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
)

func iv(s, e float64) interval.Interval { return interval.New(s, e) }

func TestNeverWorseAndFeasible(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		in := generator.General(seed, 25, 3, 30, 10)
		base := firstfit.Schedule(in)
		improved, err := Improve(base, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := improved.Verify(); err != nil {
			t.Fatalf("seed %d: infeasible after improvement: %v", seed, err)
		}
		if improved.Cost() > base.Cost()+1e-9 {
			t.Errorf("seed %d: cost grew %v → %v", seed, base.Cost(), improved.Cost())
		}
	}
}

func TestImprovesBadSchedule(t *testing.T) {
	// NextFit in arrival order is easy to improve: two distant singleton
	// jobs end up on separate machines even though merging is free.
	in := core.NewInstance(2, iv(0, 2), iv(1, 3), iv(10, 12), iv(11, 13))
	bad := core.NewSchedule(in)
	for j := range in.Jobs {
		bad.AssignNew(j) // one machine per job: cost 8
	}
	improved, err := Improve(bad, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: two machines ([0,3] and [10,13]) = 6.
	if improved.Cost() > 6+1e-9 {
		t.Errorf("cost = %v, want ≤ 6", improved.Cost())
	}
	if improved.NumMachines() != 2 {
		t.Errorf("machines = %d, want 2", improved.NumMachines())
	}
}

func TestRespectsCapacityDuringMerge(t *testing.T) {
	// Three pairwise overlapping jobs, g=2: no pair of machines holding
	// {2,1} may merge.
	in := core.NewInstance(2, iv(0, 10), iv(1, 9), iv(2, 8))
	s := firstfit.Schedule(in)
	improved, err := Improve(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := improved.Verify(); err != nil {
		t.Fatalf("capacity violated: %v", err)
	}
	if improved.NumMachines() < 2 {
		t.Error("merged beyond capacity")
	}
}

func TestReachesOptimumOnEasyCases(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		in := generator.General(seed, 8, 2, 15, 6)
		opt, err := exact.Cost(in)
		if err != nil {
			t.Fatal(err)
		}
		improved, err := Improve(baselines.NextFit(in), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if improved.Cost() < opt-1e-9 {
			t.Fatalf("seed %d: improved below OPT — %v < %v", seed, improved.Cost(), opt)
		}
	}
}

func TestQuickInvariants(t *testing.T) {
	f := func(seed int64, nn, gg uint8) bool {
		in := generator.General(seed, int(nn%20)+1, int(gg%3)+1, 25, 8)
		base := baselines.RandomFit(in, seed)
		improved, err := Improve(base, Options{MaxRounds: 5})
		if err != nil {
			return false
		}
		if improved.Verify() != nil {
			return false
		}
		if improved.Cost() > base.Cost()+1e-9 {
			return false
		}
		return improved.Cost() >= core.BestBound(in)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDemandsPreserved(t *testing.T) {
	base := generator.General(3, 15, 4, 20, 8)
	in := generator.WithDemands(base, 4, 4)
	s := firstfit.Schedule(in)
	improved, err := Improve(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := improved.Verify(); err != nil {
		t.Fatalf("demand capacity violated: %v", err)
	}
}

func TestEmptySchedule(t *testing.T) {
	s := core.NewSchedule(core.NewInstance(2))
	improved, err := Improve(s, Options{})
	if err != nil || improved.Cost() != 0 {
		t.Errorf("empty: %v cost=%v", err, improved.Cost())
	}
}

func BenchmarkImprove100(b *testing.B) {
	in := generator.General(7, 100, 3, 80, 15)
	s := firstfit.Schedule(in)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Improve(s, Options{MaxRounds: 5}); err != nil {
			b.Fatal(err)
		}
	}
}
