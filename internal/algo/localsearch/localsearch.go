// Package localsearch provides improvement passes that post-process any
// feasible schedule without ever violating feasibility or increasing cost:
//
//   - Move: relocate single jobs to the machine where they add the least
//     busy time (including machines they empty out of entirely);
//   - Merge: fuse two machines when their combined job set still respects g
//     and the union is cheaper than the parts.
//
// The passes iterate to a local optimum. They are ablation A3 of DESIGN.md:
// the paper's algorithms are one-shot; this measures how much a generic
// improvement step adds on top of FirstFit.
package localsearch

import (
	"busytime/internal/algo"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/interval"
)

func init() {
	algo.Register(algo.Algorithm{
		Name:        "firstfit+ls",
		Description: "FirstFit (§2.1) followed by move/merge local search to a local optimum (ablation A3)",
		Run: func(in *core.Instance) *core.Schedule {
			s, err := Improve(firstfit.Schedule(in), Options{})
			if err != nil {
				panic(err)
			}
			return s
		},
		RunScratch: func(in *core.Instance, sc *core.Scratch) *core.Schedule {
			s, err := ImproveScratch(firstfit.ScheduleScratch(in, sc), Options{}, sc)
			if err != nil {
				panic(err)
			}
			return s
		},
		// The move pass shuffles member order as it relocates jobs, so the
		// rebuilt machine job lists (and their float span accumulation) depend
		// on cross-machine state; splitting the search per component would
		// change intermediate orders. Not decomposable.
	})
}

// Options bounds the search.
type Options struct {
	// MaxRounds caps full improvement sweeps (default 20).
	MaxRounds int
	// Tolerance is the minimum cost improvement to accept a move
	// (default 1e-9, guarding against float churn).
	Tolerance float64
}

func (o *Options) fill() {
	if o.MaxRounds == 0 {
		o.MaxRounds = 20
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-9
	}
}

// assignment is the mutable working state: job -> machine plus per-machine
// job lists. We rebuild a core.Schedule only at the end, because
// core.Schedule is append-only by design.
type assignment struct {
	in     *core.Instance
	of     []int
	member [][]int // machine -> job indices
}

func fromSchedule(s *core.Schedule) *assignment {
	in := s.Instance()
	a := &assignment{in: in, of: make([]int, in.N()), member: make([][]int, s.NumMachines())}
	for j := 0; j < in.N(); j++ {
		m := s.MachineOf(j)
		a.of[j] = m
		a.member[m] = append(a.member[m], j)
	}
	return a
}

func (a *assignment) set(m int) interval.Set {
	set := make(interval.Set, 0, len(a.member[m]))
	for _, j := range a.member[m] {
		set = append(set, a.in.Jobs[j].Iv)
	}
	return set
}

// weightedDepthOK reports whether the jobs of machine m plus extra (may be
// -1) stay within capacity g.
func (a *assignment) capacityOK(m int, extra int) bool {
	var evs []evt
	add := func(j int) {
		job := a.in.Jobs[j]
		evs = append(evs, evt{job.Iv.Start, job.Demand}, evt{job.Iv.End, -job.Demand})
	}
	for _, j := range a.member[m] {
		add(j)
	}
	if extra >= 0 {
		add(extra)
	}
	// Insertion-sort-free: small slices; use simple sort.
	sortEvents(evs)
	depth := 0
	for _, e := range evs {
		depth += e.delta
		if depth > a.in.G {
			return false
		}
	}
	return true
}

type evt = struct {
	t     float64
	delta int
}

func sortEvents(evs []evt) {
	// starts before ends at equal t (closed semantics): +delta first.
	for i := 1; i < len(evs); i++ {
		for k := i; k > 0; k-- {
			if evs[k].t < evs[k-1].t ||
				(evs[k].t == evs[k-1].t && evs[k].delta > evs[k-1].delta) {
				evs[k], evs[k-1] = evs[k-1], evs[k]
				continue
			}
			break
		}
	}
}

func (a *assignment) cost(m int) float64 { return a.set(m).Span() }

func (a *assignment) totalCost() float64 {
	var c float64
	for m := range a.member {
		c += a.cost(m)
	}
	return c
}

func (a *assignment) move(j, to int) {
	from := a.of[j]
	list := a.member[from]
	for i, jj := range list {
		if jj == j {
			a.member[from] = append(list[:i], list[i+1:]...)
			break
		}
	}
	a.member[to] = append(a.member[to], j)
	a.of[j] = to
}

// Improve runs move and merge passes until no improvement or MaxRounds.
// It returns a new schedule; the input is not modified. The result's cost is
// never worse than the input's and feasibility is preserved.
func Improve(s *core.Schedule, opts Options) (*core.Schedule, error) {
	opts.fill()
	a := fromSchedule(s)
	for round := 0; round < opts.MaxRounds; round++ {
		improved := a.movePass(opts.Tolerance)
		if a.mergePass(opts.Tolerance) {
			improved = true
		}
		if !improved {
			break
		}
	}
	return a.build()
}

// ImproveScratch is Improve with the final schedule drawn from sc — the
// kernel-routed batch path. The input schedule may itself live on sc: the
// working state is copied out of it up front, so rebuilding over the same
// arena is safe (the input is invalidated, like any schedule on a recycled
// scratch).
func ImproveScratch(s *core.Schedule, opts Options, sc *core.Scratch) (*core.Schedule, error) {
	opts.fill()
	a := fromSchedule(s)
	for round := 0; round < opts.MaxRounds; round++ {
		improved := a.movePass(opts.Tolerance)
		if a.mergePass(opts.Tolerance) {
			improved = true
		}
		if !improved {
			break
		}
	}
	return a.buildInto(core.NewScheduleFrom(a.in, sc))
}

// movePass relocates each job to its cheapest feasible machine.
func (a *assignment) movePass(tol float64) bool {
	improved := false
	for j := range a.of {
		from := a.of[j]
		// Cost of from-machine with and without j.
		withJ := a.cost(from)
		a.move(j, from) // no-op shuffle keeps member order stable
		bestTo, bestGain := -1, tol
		// Removing j from `from`:
		a.removeTemporarily(j, func() {
			without := a.cost(from)
			saved := withJ - without
			for to := range a.member {
				if to == from {
					continue
				}
				if !a.capacityOK(to, j) {
					continue
				}
				before := a.cost(to)
				after := append(a.set(to), a.in.Jobs[j].Iv).Span()
				gain := saved - (after - before)
				if gain > bestGain {
					bestGain, bestTo = gain, to
				}
			}
		})
		if bestTo >= 0 {
			a.move(j, bestTo)
			improved = true
		}
	}
	return improved
}

// removeTemporarily removes job j from its machine, runs f, and restores it.
func (a *assignment) removeTemporarily(j int, f func()) {
	m := a.of[j]
	list := a.member[m]
	idx := -1
	for i, jj := range list {
		if jj == j {
			idx = i
			break
		}
	}
	a.member[m] = append(list[:idx:idx], list[idx+1:]...)
	f()
	a.member[m] = append(a.member[m], j)
}

// mergePass fuses machine pairs when feasible and strictly cheaper.
func (a *assignment) mergePass(tol float64) bool {
	improved := false
	for m1 := 0; m1 < len(a.member); m1++ {
		if len(a.member[m1]) == 0 {
			continue
		}
		for m2 := m1 + 1; m2 < len(a.member); m2++ {
			if len(a.member[m2]) == 0 {
				continue
			}
			if !a.mergeFeasible(m1, m2) {
				continue
			}
			merged := append(a.set(m1), a.set(m2)...).Span()
			if a.cost(m1)+a.cost(m2)-merged > tol {
				jobs := append([]int(nil), a.member[m2]...)
				for _, j := range jobs {
					a.move(j, m1)
				}
				improved = true
			}
		}
	}
	return improved
}

func (a *assignment) mergeFeasible(m1, m2 int) bool {
	var evs []evt
	for _, m := range []int{m1, m2} {
		for _, j := range a.member[m] {
			job := a.in.Jobs[j]
			evs = append(evs, evt{job.Iv.Start, job.Demand}, evt{job.Iv.End, -job.Demand})
		}
	}
	sortEvents(evs)
	depth := 0
	for _, e := range evs {
		depth += e.delta
		if depth > a.in.G {
			return false
		}
	}
	return true
}

// build materializes a compacted core.Schedule.
func (a *assignment) build() (*core.Schedule, error) {
	return a.buildInto(core.NewSchedule(a.in))
}

func (a *assignment) buildInto(out *core.Schedule) (*core.Schedule, error) {
	for _, jobs := range a.member {
		if len(jobs) == 0 {
			continue
		}
		m := out.OpenMachine()
		for _, j := range jobs {
			out.Assign(j, m)
		}
	}
	if err := out.Verify(); err != nil {
		return nil, err
	}
	return out, nil
}
