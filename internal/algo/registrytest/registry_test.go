// Package registrytest pins the registry-wide contract of the placement
// kernel refactor: every registered algorithm carries a RunScratch entry
// point, and RunScratch is byte-identical to Run — same machine count, same
// job→machine map, same per-machine job lists, bitwise-equal cost — across
// every generator family, with one shared Scratch kept warm across all
// algorithms and instances. Algorithms with class preconditions (clique,
// laminar, exact, boundedlength) must fail on both paths symmetrically.
//
// It lives in its own package so the algo package's registration unit tests
// (which inject stub algorithms) cannot leak into the registry under test.
package registrytest

import (
	"context"
	"fmt"
	"testing"

	"busytime/internal/algo"
	_ "busytime/internal/algo/baselines"
	_ "busytime/internal/algo/boundedlength"
	_ "busytime/internal/algo/cliquealgo"
	_ "busytime/internal/algo/exact"
	_ "busytime/internal/algo/firstfit"
	_ "busytime/internal/algo/laminar"
	_ "busytime/internal/algo/portfolio"
	_ "busytime/internal/algo/properfit"
	"busytime/internal/core"
	"busytime/internal/decomp"
	"busytime/internal/generator"
	_ "busytime/internal/online"
	"busytime/internal/sim"
)

// families enumerates the nine generator families of the differential
// suite; sizes stay modest so the full registry sweep stays fast.
func families(seed int64) []*core.Instance {
	gen := generator.General(seed, 120, 3, 80, 20)
	return []*core.Instance{
		gen,
		generator.Proper(seed, 100, 3, 60, 15),
		generator.Clique(seed, 60, 4, 10, 8),
		generator.BoundedLength(seed, 80, 2, 6, 4),
		generator.Laminar(seed, 3, 3, 3, 4, 20),
		generator.CloudBurst(seed, 150, 6, 200, 10, 4, 0.6),
		generator.LightpathWave(seed, 5, 30, 4, 40, 15, 10),
		generator.WithDemands(gen, seed+1, 3),
		generator.Clustered(seed, 6, 12, 3, 9, 4),
	}
}

// runSafely converts algorithm panics (class preconditions, size limits) to
// errors so the sweep can assert failure symmetry.
func runSafely(f func() *core.Schedule) (s *core.Schedule, err error) {
	defer func() {
		if r := recover(); r != nil {
			s, err = nil, fmt.Errorf("%v", r)
		}
	}()
	return f(), nil
}

// assertIdentical fails unless the two schedules are byte-identical.
func assertIdentical(t *testing.T, label string, a, b *core.Schedule) {
	t.Helper()
	if a.NumMachines() != b.NumMachines() {
		t.Fatalf("%s: %d machines vs %d", label, a.NumMachines(), b.NumMachines())
	}
	for j := 0; j < a.Instance().N(); j++ {
		if a.MachineOf(j) != b.MachineOf(j) {
			t.Fatalf("%s: job %d on machine %d vs %d", label, j, a.MachineOf(j), b.MachineOf(j))
		}
	}
	for m := 0; m < a.NumMachines(); m++ {
		ja, jb := a.MachineJobs(m), b.MachineJobs(m)
		if len(ja) != len(jb) {
			t.Fatalf("%s: machine %d holds %d vs %d jobs", label, m, len(ja), len(jb))
		}
		for i := range ja {
			if ja[i] != jb[i] {
				t.Fatalf("%s: machine %d slot %d: job %d vs %d", label, m, i, ja[i], jb[i])
			}
		}
	}
	if a.Cost() != b.Cost() {
		t.Fatalf("%s: cost %v vs %v", label, a.Cost(), b.Cost())
	}
}

// TestEveryAlgorithmHasRunScratch is the registry completeness gate of the
// kernel refactor.
func TestEveryAlgorithmHasRunScratch(t *testing.T) {
	all := algo.All()
	if len(all) == 0 {
		t.Fatal("registry is empty")
	}
	for _, a := range all {
		if a.RunScratch == nil {
			t.Errorf("%s has no RunScratch", a.Name)
		}
	}
}

// TestRegistryRunScratchParity sweeps every registered algorithm over every
// generator family, comparing Run against RunScratch through one shared,
// warm Scratch. The Run schedule is independently allocated, and each
// recycled schedule is compared before the scratch's next use, so the two
// never alias.
func TestRegistryRunScratchParity(t *testing.T) {
	sc := new(core.Scratch)
	for seed := int64(0); seed < 4; seed++ {
		for fi, in := range families(seed) {
			for _, a := range all(t) {
				a := a
				label := fmt.Sprintf("%s seed=%d family=%d", a.Name, seed, fi)
				fresh, errRun := runSafely(func() *core.Schedule { return a.Run(in) })
				recycled, errScratch := runSafely(func() *core.Schedule { return a.RunScratch(in, sc) })
				if (errRun == nil) != (errScratch == nil) {
					t.Fatalf("%s: Run err=%v but RunScratch err=%v", label, errRun, errScratch)
				}
				if errRun != nil {
					continue // class precondition failed on both paths
				}
				if err := fresh.Verify(); err != nil {
					t.Fatalf("%s: Run schedule infeasible: %v", label, err)
				}
				assertIdentical(t, label, fresh, recycled)
			}
		}
	}
}

// all returns the registry, skipping nothing; split out so the parity sweep
// fails loudly if registration ever becomes empty.
func all(t *testing.T) []algo.Algorithm {
	t.Helper()
	out := algo.All()
	if len(out) == 0 {
		t.Fatal("registry is empty")
	}
	return out
}

// TestRegistryDecomposedParity is the decomposition layer's registry-wide
// differential: for every algorithm that declares a Decomposer, the
// decompose–solve–merge path over spare arenas must be byte-identical to the
// plain sequential run on every generator family — same assignment, same
// per-machine slot order, bitwise-equal cost — and must fail symmetrically
// where the sequential path fails (the exact solver's component limit).
func TestRegistryDecomposedParity(t *testing.T) {
	pool := make(chan *core.Scratch, 3)
	for i := 0; i < 3; i++ {
		pool <- new(core.Scratch)
	}
	runner := decomp.NewRunner()
	seqScratch := new(core.Scratch)
	decomposable := 0
	for _, a := range all(t) {
		if a.Decompose != nil {
			decomposable++
		}
	}
	if decomposable < 7 {
		t.Fatalf("only %d registered algorithms declare a Decomposer; want ≥ 7", decomposable)
	}
	for seed := int64(0); seed < 4; seed++ {
		for fi, in := range families(seed) {
			for _, a := range all(t) {
				if a.Decompose == nil {
					continue
				}
				a := a
				label := fmt.Sprintf("%s seed=%d family=%d", a.Name, seed, fi)
				seq, seqErr := runSafely(func() *core.Schedule { return a.RunScratch(in, seqScratch) })
				sc := new(core.Scratch)
				dec, st, decErr := runner.Run(context.Background(), in, a.Decompose, sc, pool, 4)
				if dec == nil && decErr == nil {
					// The layer declined; the real callers fall back to the
					// plain sequential path on the same arena.
					if st.Components > 1 {
						t.Fatalf("%s: layer declined on %d components with 3 spare arenas", label, st.Components)
					}
					dec, decErr = runSafely(func() *core.Schedule { return a.RunScratch(in, sc) })
				}
				if (seqErr == nil) != (decErr == nil) {
					t.Fatalf("%s: sequential err=%v but decomposed err=%v", label, seqErr, decErr)
				}
				if seqErr != nil {
					continue // failed symmetrically (component limits)
				}
				assertIdentical(t, label, seq, dec)
			}
		}
	}
}

// TestRegistryScratchSizeLadder stresses the shared arena across shrinking
// and growing instances for the kernel-routed policies that exercise the
// index (firstfit, bestfit, the online replays), pinning each recycled
// schedule against a fresh run.
func TestRegistryScratchSizeLadder(t *testing.T) {
	names := []string{"firstfit", "bestfit", "online-firstfit", "online-bestfit", "online-nextfit"}
	sc := new(core.Scratch)
	sizes := []int{30, 1500, 100, 900, 7, 1500}
	for round, n := range sizes {
		in := generator.General(int64(700+round), n, 3+round%4, float64(n)/2+1, 18)
		for _, name := range names {
			a, ok := algo.Lookup(name)
			if !ok {
				t.Fatalf("%s not registered", name)
			}
			fresh := a.Run(in)
			recycled := a.RunScratch(in, sc)
			assertIdentical(t, fmt.Sprintf("%s round=%d n=%d", name, round, n), fresh, recycled)
		}
	}
}

// TestRegistrySimCrossCheck is the registry-wide differential against the
// discrete-event simulator: for every algorithm × generator family, the busy
// time measured by replaying the produced schedule event by event must equal
// the analytic span-based cost, with zero capacity violations. It catches
// span-accounting drift in any future placement kernel from the opposite
// direction — billing what a machine executing the schedule would bill.
func TestRegistrySimCrossCheck(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		for fi, in := range families(seed) {
			for _, a := range all(t) {
				a := a
				label := fmt.Sprintf("%s seed=%d family=%d", a.Name, seed, fi)
				s, err := runSafely(func() *core.Schedule { return a.Run(in) })
				if err != nil {
					continue // class precondition rejected the family
				}
				if err := sim.Check(s, 1e-6); err != nil {
					t.Fatalf("%s: replay disagrees with analytic cost: %v", label, err)
				}
			}
		}
	}
}
