package cliquealgo

import (
	"math"
	"testing"
	"testing/quick"

	"busytime/internal/algo"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
)

func iv(s, e float64) interval.Interval { return interval.New(s, e) }

func TestRegistered(t *testing.T) {
	if _, ok := algo.Lookup("clique"); !ok {
		t.Fatal("clique not registered")
	}
}

func TestRejectsNonClique(t *testing.T) {
	in := core.NewInstance(2, iv(0, 1), iv(5, 6))
	if _, err := Schedule(in); err == nil {
		t.Error("non-clique instance accepted")
	}
}

func TestEmptyAndSingle(t *testing.T) {
	s, err := Schedule(core.NewInstance(2))
	if err != nil || s.NumMachines() != 0 {
		t.Errorf("empty: %v machines=%d", err, s.NumMachines())
	}
	s, err = Schedule(core.NewInstance(2, iv(1, 4)))
	if err != nil || s.Cost() != 3 {
		t.Errorf("single: %v cost=%v", err, s.Cost())
	}
}

func TestDelta(t *testing.T) {
	j := core.Job{Iv: iv(2, 8)}
	if got := Delta(j, 5); got != 3 {
		t.Errorf("Delta = %v, want 3", got)
	}
	if got := Delta(j, 3); got != 5 {
		t.Errorf("Delta = %v, want 5 (right side dominates)", got)
	}
}

func TestGroupsOfG(t *testing.T) {
	// Six clique jobs, g=3 → exactly 2 machines with 3 jobs each, grouped by
	// non-increasing δ around the common point.
	in := core.NewInstance(3,
		iv(-6, 6), iv(-5, 5), iv(-4, 4), iv(-3, 3), iv(-2, 2), iv(-1, 1))
	s, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if s.NumMachines() != 2 {
		t.Fatalf("machines = %d, want 2", s.NumMachines())
	}
	// Largest three deltas {6,5,4} on one machine: busy [-6,6] = 12.
	// Smallest three {3,2,1}: busy [-3,3] = 6.
	costs := []float64{s.MachineBusy(0), s.MachineBusy(1)}
	if costs[0] != 12 || costs[1] != 6 {
		t.Errorf("busy = %v, want [12 6]", costs)
	}
}

func TestTheoremA1TwoApprox(t *testing.T) {
	// ALG ≤ 2·Σδ_O^i ≤ 2·OPT and here OPT ≥ max len ≥ Δ: check ALG against
	// the δ-sum bound directly.
	for seed := int64(0); seed < 40; seed++ {
		in := generator.Clique(seed, 17, 3, 10, 6)
		s, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("Verify: %v", err)
		}
		tpt, ok := in.Set().CommonPoint()
		if !ok {
			t.Fatal("generator produced non-clique")
		}
		deltas := MachineDeltas(s, tpt)
		var sum float64
		for _, d := range deltas {
			sum += d
		}
		if s.Cost() > 2*sum+1e-9 {
			t.Errorf("seed %d: cost %v > 2·Σδ_A %v", seed, s.Cost(), 2*sum)
		}
	}
}

func TestClaim4AgainstAnyPartition(t *testing.T) {
	// Claim 4: the algorithm's sorted per-machine δ vector is dominated by
	// that of ANY feasible partition into groups of ≤ g. Compare against a
	// few alternative partitions.
	in := generator.Clique(3, 12, 3, 0, 5)
	tpt, _ := in.Set().CommonPoint()
	s, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	algDeltas := MachineDeltas(s, tpt)
	// Alternative: jobs in ID order, groups of g.
	alt := core.NewSchedule(in)
	for j := range in.Jobs {
		if j%in.G == 0 {
			alt.OpenMachine()
		}
		alt.Assign(j, alt.NumMachines()-1)
	}
	altDeltas := MachineDeltas(alt, tpt)
	for i := range algDeltas {
		if i < len(altDeltas) && algDeltas[i] > altDeltas[i]+1e-9 {
			t.Errorf("rank %d: δ_A %v > δ_alt %v", i, algDeltas[i], altDeltas[i])
		}
	}
}

func TestScheduleAroundAnyCommonPoint(t *testing.T) {
	in := core.NewInstance(2, iv(0, 10), iv(2, 8), iv(4, 6), iv(5, 9))
	for _, tpt := range []float64{5, 5.5, 6} {
		s := ScheduleAround(in, tpt)
		if err := s.Verify(); err != nil {
			t.Errorf("t=%v: %v", tpt, err)
		}
		if !s.Complete() {
			t.Errorf("t=%v: incomplete", tpt)
		}
	}
}

func TestQuickFeasibleAndMachineCount(t *testing.T) {
	f := func(seed int64, nn, gg uint8) bool {
		n := int(nn%30) + 1
		g := int(gg%4) + 1
		in := generator.Clique(seed, n, g, 5, 4)
		s, err := Schedule(in)
		if err != nil || s.Verify() != nil {
			return false
		}
		want := (n + g - 1) / g // ⌈|C|/g⌉ machines
		return s.NumMachines() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBusyWithinTwoDelta(t *testing.T) {
	// busy_i ≤ 2·δ_A^i for every machine (proof of Theorem A.1).
	f := func(seed int64, nn uint8) bool {
		in := generator.Clique(seed, int(nn%24)+1, 3, 0, 6)
		tpt, ok := in.Set().CommonPoint()
		if !ok {
			return false
		}
		s, err := Schedule(in)
		if err != nil {
			return false
		}
		for m := 0; m < s.NumMachines(); m++ {
			var dm float64
			for _, j := range s.MachineJobs(m) {
				if d := Delta(in.Jobs[j], tpt); d > dm {
					dm = d
				}
			}
			if s.MachineBusy(m) > 2*dm+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMachineDeltasSorted(t *testing.T) {
	in := generator.Clique(9, 20, 4, 0, 8)
	tpt, _ := in.Set().CommonPoint()
	s, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	deltas := MachineDeltas(s, tpt)
	for i := 1; i < len(deltas); i++ {
		if deltas[i-1] < deltas[i] {
			t.Fatalf("deltas not sorted: %v", deltas)
		}
	}
	if math.IsNaN(deltas[0]) {
		t.Fatal("NaN delta")
	}
}

func BenchmarkClique1k(b *testing.B) {
	in := generator.Clique(7, 1000, 4, 0, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(in); err != nil {
			b.Fatal(err)
		}
	}
}
