// Package cliquealgo implements the scheduling algorithm for cliques
// (Appendix of the paper): when all job intervals share a common point t,
// sort jobs by non-increasing distance δ_j = max(t−s_j, c_j−t) from t and
// pack them onto machines in consecutive groups of g.
//
// Theorem A.1: the algorithm's total busy time is at most 2·OPT(C). The key
// invariant (Claim 4) is that for every rank i the algorithm's i-th largest
// per-machine distance δ_A^i is at most the optimum's δ_O^i.
package cliquealgo

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"

	"busytime/internal/algo"
	"busytime/internal/core"
)

func init() {
	algo.Register(algo.Algorithm{
		Name:        "clique",
		Description: "group-by-distance algorithm for clique instances (Appendix, 2-approximation)",
		Run: func(in *core.Instance) *core.Schedule {
			s, err := Schedule(in)
			if err != nil {
				panic(err) // registry entry is only used on clique instances
			}
			return s
		},
		RunScratch: func(in *core.Instance, sc *core.Scratch) *core.Schedule {
			s, err := ScheduleScratch(in, sc)
			if err != nil {
				panic(err)
			}
			return s
		},
	})
}

// Schedule runs the clique algorithm. It fails if the instance is not a
// clique (no common point exists).
func Schedule(in *core.Instance) (*core.Schedule, error) {
	return schedule(in, nil)
}

// ScheduleScratch is Schedule drawing schedule state from sc. The returned
// schedule is only valid until sc's next use.
func ScheduleScratch(in *core.Instance, sc *core.Scratch) (*core.Schedule, error) {
	return schedule(in, sc)
}

func schedule(in *core.Instance, sc *core.Scratch) (*core.Schedule, error) {
	if in.N() == 0 {
		return core.NewScheduleFrom(in, sc), nil
	}
	t, ok := in.Set().CommonPoint()
	if !ok {
		return nil, fmt.Errorf("cliquealgo: instance %q is not a clique", in.Name)
	}
	return scheduleAroundInto(in, t, core.NewScheduleFrom(in, sc)), nil
}

// ScheduleAround runs the clique algorithm using the given common point t.
// Callers that know a specific intersection point (e.g. the harness testing
// sensitivity to the choice of t) can pass it directly; the approximation
// guarantee holds for any point contained in all intervals.
func ScheduleAround(in *core.Instance, t float64) *core.Schedule {
	return scheduleAroundInto(in, t, core.NewSchedule(in))
}

func scheduleAroundInto(in *core.Instance, t float64, s *core.Schedule) *core.Schedule {
	order := distanceOrder(in, t)
	k := s.Placer()
	g := in.G
	for i, j := range order {
		if i%g == 0 {
			k.OpenMachine()
		}
		k.Place(j, k.NumMachines()-1)
	}
	return s
}

// Delta returns δ_j = max(t−s_j, c_j−t), the maximal distance of an endpoint
// of the job from the point t.
func Delta(j core.Job, t float64) float64 {
	return math.Max(t-j.Iv.Start, j.Iv.End-t)
}

// distanceOrder returns job indices by non-increasing δ, ties by ID.
func distanceOrder(in *core.Instance, t float64) []int {
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	jobs := in.Jobs
	slices.SortFunc(order, func(a, b int) int {
		da, db := Delta(jobs[a], t), Delta(jobs[b], t)
		if da != db {
			if da > db {
				return -1
			}
			return 1
		}
		return cmp.Compare(jobs[a].ID, jobs[b].ID)
	})
	return order
}

// MachineDeltas returns, for a schedule of a clique instance around point t,
// the per-machine maximal distances δ^i sorted non-increasingly. Used to
// check Claim 4 (δ_A^i ≤ δ_O^i) in tests and the harness.
func MachineDeltas(s *core.Schedule, t float64) []float64 {
	in := s.Instance()
	out := make([]float64, s.NumMachines())
	for m := range out {
		var d float64
		for _, j := range s.MachineJobs(m) {
			if dj := Delta(in.Jobs[j], t); dj > d {
				d = dj
			}
		}
		out[m] = d
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}
