package demand

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
)

func flexRandom(seed int64, n, g int, slackMax float64) *FlexInstance {
	r := rand.New(rand.NewSource(seed))
	in := &FlexInstance{Name: "flex", G: g}
	for i := 0; i < n; i++ {
		rel := r.Float64() * 40
		proc := 0.5 + r.Float64()*8
		slack := r.Float64() * slackMax
		in.Jobs = append(in.Jobs, FlexJob{
			ID:      i,
			Release: rel,
			Due:     rel + proc + slack,
			Proc:    proc,
			Demand:  1 + r.Intn(g),
		})
	}
	return in
}

func TestValidate(t *testing.T) {
	bad := []*FlexInstance{
		{G: 0},
		{G: 2, Jobs: []FlexJob{{ID: 0, Release: 0, Due: 1, Proc: 2, Demand: 1}}},
		{G: 2, Jobs: []FlexJob{{ID: 0, Release: 0, Due: 5, Proc: 1, Demand: 3}}},
		{G: 2, Jobs: []FlexJob{{ID: 0, Release: 0, Due: 5, Proc: 1, Demand: 1}, {ID: 0, Release: 0, Due: 5, Proc: 1, Demand: 1}}},
		{G: 2, Jobs: []FlexJob{{ID: 0, Release: 0, Due: 5, Proc: -1, Demand: 1}}},
	}
	for i, in := range bad {
		if in.Validate() == nil {
			t.Errorf("case %d: invalid instance accepted", i)
		}
	}
	good := &FlexInstance{G: 2, Jobs: []FlexJob{{ID: 0, Release: 0, Due: 3, Proc: 3, Demand: 2}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestSlackAndWindow(t *testing.T) {
	j := FlexJob{Release: 1, Due: 6, Proc: 3}
	if j.Slack() != 2 {
		t.Errorf("Slack = %v, want 2", j.Slack())
	}
	if w := j.Window(); w.Start != 1 || w.End != 6 {
		t.Errorf("Window = %v", w)
	}
}

func TestZeroSlackMatchesFixedFirstFit(t *testing.T) {
	// With no slack, every start is forced; the induced instance equals the
	// fixed instance and the cost must be within the fixed FirstFit's range.
	in := flexRandom(3, 15, 3, 0)
	res, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range in.Jobs {
		if math.Abs(res.Starts[j.ID]-j.Release) > 1e-9 {
			t.Errorf("job %d start %v, want release %v", j.ID, res.Starts[j.ID], j.Release)
		}
	}
	ff := firstfit.Schedule(res.Fixed)
	// Same fixed instance: greedy best-fit should not be drastically worse.
	if res.Schedule.Cost() > 4*ff.Cost()+1e-9 && ff.Cost() > 0 {
		t.Errorf("flexible cost %v far above FirstFit %v on forced instance",
			res.Schedule.Cost(), ff.Cost())
	}
}

func TestSlackEnablesPacking(t *testing.T) {
	// Two unit jobs with disjoint forced placement but overlapping windows:
	// with slack the scheduler can butt them together... with g=1 they
	// cannot overlap, so cost is 2 either way; with large slack and g=2 it
	// can overlap them into busy time < 2.
	in := &FlexInstance{G: 2, Jobs: []FlexJob{
		{ID: 0, Release: 0, Due: 10, Proc: 1, Demand: 1},
		{ID: 1, Release: 0, Due: 10, Proc: 1, Demand: 1},
	}}
	res, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Cost() > 1+1e-9 {
		t.Errorf("cost = %v, want 1 (jobs stacked)", res.Schedule.Cost())
	}
}

func TestDemandBlocksStacking(t *testing.T) {
	// Two demand-2 jobs with g=2 can never overlap.
	in := &FlexInstance{G: 2, Jobs: []FlexJob{
		{ID: 0, Release: 0, Due: 2, Proc: 2, Demand: 2},
		{ID: 1, Release: 0, Due: 2, Proc: 2, Demand: 2},
	}}
	res, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Cost() < 4-1e-9 {
		t.Errorf("cost = %v, want 4 (no overlap possible)", res.Schedule.Cost())
	}
}

func TestQuickFeasibleAndAboveWorkBound(t *testing.T) {
	f := func(seed int64, nn, gg uint8) bool {
		in := flexRandom(seed, int(nn%25)+1, int(gg%4)+1, 5)
		res, err := Schedule(in)
		if err != nil {
			return false
		}
		if res.Verify(in) != nil {
			return false
		}
		return res.Schedule.Cost() >= in.WorkBound()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDeterministic(t *testing.T) {
	in := flexRandom(11, 20, 3, 4)
	a, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule.Cost() != b.Schedule.Cost() {
		t.Errorf("non-deterministic: %v vs %v", a.Schedule.Cost(), b.Schedule.Cost())
	}
}

func TestInducedFixedInstanceConsistent(t *testing.T) {
	in := flexRandom(5, 12, 2, 3)
	res, err := Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixed.N() != len(in.Jobs) {
		t.Fatal("fixed instance lost jobs")
	}
	for i, j := range in.Jobs {
		fj := res.Fixed.Jobs[i]
		if fj.ID != j.ID || fj.Demand != j.Demand {
			t.Errorf("job %d metadata mismatch", i)
		}
		if math.Abs(fj.Len()-j.Proc) > 1e-9 {
			t.Errorf("job %d length %v, want proc %v", i, fj.Len(), j.Proc)
		}
	}
	var _ *core.Instance = res.Fixed
}

func BenchmarkFlexSchedule200(b *testing.B) {
	in := flexRandom(7, 200, 4, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(in); err != nil {
			b.Fatal(err)
		}
	}
}

// TestScheduleScratchMatchesFresh pins the kernel-materialized scratch path
// against the fresh one: identical starts, machines and cost, with one
// Scratch recycled across differently-shaped flexible instances.
func TestScheduleScratchMatchesFresh(t *testing.T) {
	sc := new(core.Scratch)
	for seed := int64(0); seed < 8; seed++ {
		in := flexRandom(seed, 25+int(seed)*7, 2+int(seed)%3, 4)
		fresh, err := Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		recycled, err := ScheduleScratch(in, sc)
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Schedule.NumMachines() != recycled.Schedule.NumMachines() ||
			fresh.Schedule.Cost() != recycled.Schedule.Cost() {
			t.Fatalf("seed %d: fresh (%d machines, cost %v) != scratch (%d machines, cost %v)",
				seed, fresh.Schedule.NumMachines(), fresh.Schedule.Cost(),
				recycled.Schedule.NumMachines(), recycled.Schedule.Cost())
		}
		for id, st := range fresh.Starts {
			if recycled.Starts[id] != st {
				t.Fatalf("seed %d: job %d start %v vs %v", seed, id, st, recycled.Starts[id])
			}
		}
	}
}
