// Package demand implements the extension the paper highlights in §1.3
// (later formalized by Khandekar, Schieber, Shachnai and Tamir [15]): each
// job has a release time, a due date, a processing time and a demand for
// machine capacity, and the scheduler chooses both a start time and a
// machine. Once start times are fixed the problem collapses to the paper's
// fixed-interval problem with demand-weighted capacity.
//
// The scheduler here follows the same design recipe as the paper's
// FirstFit: process jobs longest-first and place each one greedily — over
// every open machine and a small set of candidate start times (the release
// time plus alignments with the machine's existing busy pieces), pick the
// placement that adds the least busy time, opening a new machine at the
// release time when nothing fits. We do not claim the [15] worst-case factor
// of 5 for this variant; the harness measures its ratio against the
// demand-weighted fractional bound (experiment E10).
package demand

import (
	"cmp"
	"fmt"
	"slices"

	"busytime/internal/core"
	"busytime/internal/interval"
)

// FlexJob is a job with a flexible start: it must run for Proc time units
// inside [Release, Due], consuming Demand capacity slots while running.
type FlexJob struct {
	ID      int
	Release float64
	Due     float64
	Proc    float64
	Demand  int
}

// Window returns [Release, Due], the allowed execution window.
func (j FlexJob) Window() interval.Interval { return interval.New(j.Release, j.Due) }

// Slack returns Due − Release − Proc, the scheduling freedom.
func (j FlexJob) Slack() float64 { return j.Due - j.Release - j.Proc }

// FlexInstance is a flexible busy-time instance.
type FlexInstance struct {
	Name string
	G    int
	Jobs []FlexJob
}

// Validate checks g ≥ 1, demand bounds, and that every window fits its job.
func (in *FlexInstance) Validate() error {
	if in.G < 1 {
		return fmt.Errorf("demand: g = %d, want ≥ 1", in.G)
	}
	seen := map[int]bool{}
	for _, j := range in.Jobs {
		if seen[j.ID] {
			return fmt.Errorf("demand: duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
		if j.Demand < 1 || j.Demand > in.G {
			return fmt.Errorf("demand: job %d demand %d outside [1,%d]", j.ID, j.Demand, in.G)
		}
		if j.Proc < 0 {
			return fmt.Errorf("demand: job %d negative processing time", j.ID)
		}
		if j.Slack() < -1e-12 {
			return fmt.Errorf("demand: job %d window [%v,%v] shorter than processing %v",
				j.ID, j.Release, j.Due, j.Proc)
		}
	}
	return nil
}

// WorkBound returns the demand-weighted parallelism lower bound
// Σ Demand·Proc / g, valid for every feasible schedule.
func (in *FlexInstance) WorkBound() float64 {
	var w float64
	for _, j := range in.Jobs {
		w += float64(j.Demand) * j.Proc
	}
	return w / float64(in.G)
}

// Result is a flexible schedule: chosen start times plus the induced
// fixed-interval schedule.
type Result struct {
	Starts   map[int]float64 // Job.ID -> chosen start
	Fixed    *core.Instance  // induced fixed-interval instance
	Schedule *core.Schedule
}

// Verify checks window feasibility of the starts and machine feasibility of
// the induced schedule.
func (r *Result) Verify(in *FlexInstance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	for _, j := range in.Jobs {
		st, ok := r.Starts[j.ID]
		if !ok {
			return fmt.Errorf("demand: job %d has no start", j.ID)
		}
		if st < j.Release-1e-9 || st+j.Proc > j.Due+1e-9 {
			return fmt.Errorf("demand: job %d start %v violates window [%v,%v] (proc %v)",
				j.ID, st, j.Release, j.Due, j.Proc)
		}
	}
	return r.Schedule.Verify()
}

// Schedule chooses start times and machines greedily, longest job first.
func Schedule(in *FlexInstance) (*Result, error) {
	return schedule(in, nil)
}

// ScheduleScratch is Schedule with the induced fixed-interval schedule drawn
// from sc through the placement kernel (the start-time search still builds
// its own transient state). The result's Schedule field is only valid until
// sc's next use.
func ScheduleScratch(in *FlexInstance, sc *core.Scratch) (*Result, error) {
	return schedule(in, sc)
}

func schedule(in *FlexInstance, sc *core.Scratch) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	order := make([]int, len(in.Jobs))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		ja, jb := in.Jobs[a], in.Jobs[b]
		if ja.Proc != jb.Proc {
			if ja.Proc > jb.Proc {
				return -1
			}
			return 1
		}
		if ja.Release != jb.Release {
			if ja.Release < jb.Release {
				return -1
			}
			return 1
		}
		return cmp.Compare(ja.ID, jb.ID)
	})

	type placed struct {
		start   float64
		machine int
	}
	decided := make([]placed, len(in.Jobs))
	// machines[m] holds the placed intervals of machine m: capSet replicated
	// by demand for capacity accounting, busySet driving the candidate-start
	// proposals exactly as before, and busy as the incrementally merged span
	// union so busy-time deltas are binary searches, not set rebuilds.
	type machineState struct {
		capSet  interval.Set // one copy per demand unit
		busySet interval.Set // one copy per job
		busy    interval.Spans
	}
	var machines []*machineState

	for _, idx := range order {
		job := in.Jobs[idx]
		bestM, bestStart, bestDelta := -1, 0.0, 0.0
		for m, st := range machines {
			for _, cand := range candidateStarts(job, st.busySet) {
				ivl := interval.New(cand, cand+job.Proc)
				if maxCapDepth(st.capSet, ivl)+job.Demand > in.G {
					continue
				}
				delta := st.busy.Delta(ivl)
				if bestM < 0 || delta < bestDelta-1e-12 {
					bestM, bestStart, bestDelta = m, cand, delta
				}
			}
		}
		if bestM < 0 {
			machines = append(machines, &machineState{})
			bestM, bestStart = len(machines)-1, job.Release
		}
		st := machines[bestM]
		ivl := interval.New(bestStart, bestStart+job.Proc)
		for d := 0; d < job.Demand; d++ {
			st.capSet = append(st.capSet, ivl)
		}
		st.busySet = append(st.busySet, ivl)
		st.busy.Add(ivl)
		decided[idx] = placed{start: bestStart, machine: bestM}
	}

	// Materialize the induced fixed instance and schedule.
	fixed := &core.Instance{Name: in.Name + "/fixed", G: in.G, Jobs: make([]core.Job, len(in.Jobs))}
	starts := make(map[int]float64, len(in.Jobs))
	for i, j := range in.Jobs {
		st := decided[i].start
		starts[j.ID] = st
		fixed.Jobs[i] = core.Job{ID: j.ID, Iv: interval.New(st, st+j.Proc), Demand: j.Demand}
	}
	s := core.NewScheduleFrom(fixed, sc)
	k := s.Placer()
	maxM := -1
	for _, p := range decided {
		if p.machine > maxM {
			maxM = p.machine
		}
	}
	for m := 0; m <= maxM; m++ {
		k.OpenMachine()
	}
	for i, p := range decided {
		k.Place(i, p.machine)
	}
	res := &Result{Starts: starts, Fixed: fixed, Schedule: s}
	if err := res.Verify(in); err != nil {
		return nil, fmt.Errorf("demand: produced infeasible result: %w", err)
	}
	return res, nil
}

// candidateStarts proposes start times within the job's window: the window
// edges plus alignments that butt the job against existing busy pieces
// (start at a piece start, or end at a piece end), the placements that can
// avoid growing the busy span.
func candidateStarts(job FlexJob, busy interval.Set) []float64 {
	latest := job.Due - job.Proc
	out := []float64{job.Release, latest}
	for _, p := range busy {
		for _, cand := range []float64{p.Start, p.End - job.Proc} {
			if cand >= job.Release && cand <= latest {
				out = append(out, cand)
			}
		}
	}
	return out
}

// maxCapDepth returns the maximum closed depth of capSet within w.
func maxCapDepth(capSet interval.Set, w interval.Interval) int {
	return capSet.MaxDepthWithin(w)
}
