package boundedlength

import (
	"math"
	"testing"
	"testing/quick"

	"busytime/internal/algo"
	"busytime/internal/algo/exact"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
)

func iv(s, e float64) interval.Interval { return interval.New(s, e) }

func TestRegistered(t *testing.T) {
	if _, ok := algo.Lookup("boundedlength"); !ok {
		t.Fatal("boundedlength not registered")
	}
}

func TestSegments(t *testing.T) {
	in := core.NewInstance(2, iv(0, 1), iv(2.5, 4), iv(3, 5), iv(6.1, 7))
	buckets, nums := Segments(in, 3)
	if len(buckets) != 3 {
		t.Fatalf("buckets = %v", buckets)
	}
	want := [][]int{{0, 1}, {2}, {3}}
	for i := range want {
		if len(buckets[i]) != len(want[i]) {
			t.Fatalf("bucket %d = %v, want %v", i, buckets[i], want[i])
		}
		for k := range want[i] {
			if buckets[i][k] != want[i][k] {
				t.Errorf("bucket %d = %v, want %v", i, buckets[i], want[i])
			}
		}
	}
	if nums[0] != 0 || nums[1] != 1 || nums[2] != 2 {
		t.Errorf("segment numbers = %v", nums)
	}
}

func TestRejectsOverlongJobs(t *testing.T) {
	in := core.NewInstance(2, iv(0, 10))
	if _, err := Schedule(in, Options{D: 3}); err == nil {
		t.Error("job longer than d accepted")
	}
}

func TestNoSegmentMixing(t *testing.T) {
	in := generator.BoundedLength(5, 40, 3, 6, 4)
	s, err := Schedule(in, Options{D: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < s.NumMachines(); m++ {
		segs := map[int]bool{}
		for _, j := range s.MachineJobs(m) {
			segs[int(math.Floor(in.Jobs[j].Iv.Start/4))] = true
		}
		if len(segs) > 1 {
			t.Errorf("machine %d mixes segments %v", m, segs)
		}
	}
}

func TestLemma33SegmentedWithinTwiceOPT(t *testing.T) {
	// End-to-end: segmented cost ≤ 2·(1+tiny)·OPT on exactly solvable
	// instances (per-segment exact ⇒ loss comes only from segmentation).
	for seed := int64(0); seed < 25; seed++ {
		in := generator.BoundedLength(seed, 9, 2, 3, 3)
		seg, opt, err := SegmentationOverhead(in, Options{D: 3, ExactLimit: 12})
		if err != nil {
			t.Skipf("seed %d: %v", seed, err)
		}
		if opt == 0 {
			continue
		}
		if seg > 2*opt+1e-9 {
			t.Errorf("seed %d: segmented %v > 2·OPT %v", seed, seg, 2*opt)
		}
	}
}

func TestDefaultDFromMaxLength(t *testing.T) {
	in := core.NewInstance(2, iv(0, 2), iv(1, 4), iv(5, 6))
	s, err := Schedule(in, Options{}) // d = 3
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMatchISsToMachines(t *testing.T) {
	in := core.NewInstance(2, iv(0, 1), iv(2, 3), iv(0.5, 1.5))
	machines := []MachineSpec{{Window: iv(0, 3)}}
	iss := [][]int{{0, 1}, {2}} // two ISs: {J0,J1} disjoint, {J2}
	assign, ok, err := MatchISsToMachines(in, machines, iss)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if assign[0] != 0 || assign[1] != 0 {
		t.Errorf("assign = %v, want both on machine 0", assign)
	}
}

func TestMatchISsCapacityLimitsISCount(t *testing.T) {
	// g = 1: a single machine can take only one IS.
	in := core.NewInstance(1, iv(0, 1), iv(0.2, 0.8))
	machines := []MachineSpec{{Window: iv(0, 1)}}
	iss := [][]int{{0}, {1}}
	_, ok, err := MatchISsToMachines(in, machines, iss)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("matching claimed feasible beyond machine capacity")
	}
}

func TestMatchISsRejectsNonIndependent(t *testing.T) {
	in := core.NewInstance(2, iv(0, 2), iv(1, 3))
	machines := []MachineSpec{{Window: iv(0, 3)}}
	if _, _, err := MatchISsToMachines(in, machines, [][]int{{0, 1}}); err == nil {
		t.Error("overlapping IS accepted")
	}
}

func TestMatchISsWindowTooSmall(t *testing.T) {
	in := core.NewInstance(2, iv(0, 5))
	machines := []MachineSpec{{Window: iv(0, 3)}}
	_, ok, err := MatchISsToMachines(in, machines, [][]int{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("IS matched to machine whose window cannot contain it")
	}
}

func TestScheduleFromWitnessReproducesCost(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		in := generator.BoundedLength(seed, 14, 2, 4, 3)
		witness := firstfit.Schedule(in)
		s, err := ScheduleFromWitness(witness)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Cost bounded by the witness's machine hull lengths.
		var hulls float64
		for m := 0; m < witness.NumMachines(); m++ {
			set := witness.MachineSet(m)
			if h, ok := set.Hull(); ok {
				hulls += h.Len()
			}
		}
		if s.Cost() > hulls+1e-9 {
			t.Errorf("seed %d: matched cost %v > hull budget %v", seed, s.Cost(), hulls)
		}
	}
}

func TestQuickScheduleFeasibleAndBounded(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		in := generator.BoundedLength(seed, int(nn%30)+1, 3, 5, 4)
		s, err := Schedule(in, Options{D: 4, ExactLimit: 8})
		if err != nil {
			return false
		}
		if s.Verify() != nil || !s.Complete() {
			return false
		}
		return s.Cost() >= core.BestBound(in)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEmptyInstance(t *testing.T) {
	s, err := Schedule(core.NewInstance(2), Options{D: 1})
	if err != nil || s.Cost() != 0 {
		t.Errorf("empty: %v cost=%v", err, s.Cost())
	}
}

func TestSegmentationOverheadSmall(t *testing.T) {
	in := generator.BoundedLength(3, 8, 2, 2, 2)
	seg, opt, err := SegmentationOverhead(in, Options{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if seg < opt-1e-9 {
		t.Errorf("segmented %v below OPT %v", seg, opt)
	}
	_, err = exact.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBoundedLength200(b *testing.B) {
	in := generator.BoundedLength(7, 200, 3, 10, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(in, Options{D: 4, ExactLimit: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
