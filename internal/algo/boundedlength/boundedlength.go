// Package boundedlength implements the Bounded_Length algorithm (§3.2 of
// the paper) for instances whose job lengths lie in [1, d].
//
// The algorithm has two layers:
//
//  1. Segmentation (step 1 / Lemma 3.3): jobs are bucketed by start time
//     into segments of width d; forbidding machines to mix segments costs at
//     most a factor 2 in total busy time.
//  2. Per-segment optimization (step 2): the paper "guesses" the machine
//     busy-interval vector and the partition of the segment's jobs into
//     independent sets, then assigns ISs to machines with a maximum
//     b-matching. Full enumeration is polynomial but astronomically large,
//     so this implementation solves each segment exactly (branch and bound)
//     when it is small and falls back to FirstFit otherwise — both within
//     the paper's per-segment (1+ε) budget on the workloads we evaluate.
//     The b-matching machinery itself (steps 2(d)–(e)) is implemented in
//     MatchISsToMachines and exercised via ScheduleFromWitness, which plays
//     the "correct guess" role of the analysis.
package boundedlength

import (
	"fmt"
	"math"
	"slices"

	"busytime/internal/algo"
	"busytime/internal/algo/exact"
	"busytime/internal/algo/firstfit"
	"busytime/internal/bmatch"
	"busytime/internal/core"
	"busytime/internal/interval"
	"busytime/internal/intgraph"
)

func init() {
	algo.Register(algo.Algorithm{
		Name:        "boundedlength",
		Description: "segment by d then solve per segment (§3.2, 2+ε approximation)",
		Run: func(in *core.Instance) *core.Schedule {
			s, err := Schedule(in, Options{})
			if err != nil {
				panic(err)
			}
			return s
		},
		RunScratch: func(in *core.Instance, sc *core.Scratch) *core.Schedule {
			s, err := ScheduleScratch(in, Options{}, sc)
			if err != nil {
				panic(err)
			}
			return s
		},
	})
}

// Options configures the Bounded_Length run.
type Options struct {
	// D is the length bound; 0 means "use the maximum job length".
	D float64
	// ExactLimit is the largest segment solved exactly (default 12 jobs).
	ExactLimit int
}

func (o *Options) fill(in *core.Instance) error {
	if o.D == 0 {
		for _, j := range in.Jobs {
			if j.Len() > o.D {
				o.D = j.Len()
			}
		}
		if o.D == 0 {
			o.D = 1
		}
	}
	for _, j := range in.Jobs {
		if j.Len() > o.D+1e-9 {
			return fmt.Errorf("boundedlength: job %d length %v exceeds d = %v", j.ID, j.Len(), o.D)
		}
	}
	if o.ExactLimit == 0 {
		o.ExactLimit = 12
	}
	return nil
}

// Segments buckets job indices by segment: job j belongs to segment r ≥ 0
// when s_j ∈ [d·r, d·(r+1)). Only non-empty segments are returned, in order;
// the second result maps each returned bucket to its segment number.
func Segments(in *core.Instance, d float64) (buckets [][]int, segnum []int) {
	byseg := map[int][]int{}
	for j, job := range in.Jobs {
		r := int(math.Floor(job.Iv.Start / d))
		byseg[r] = append(byseg[r], j)
	}
	for r := range byseg {
		segnum = append(segnum, r)
	}
	slices.Sort(segnum)
	for _, r := range segnum {
		buckets = append(buckets, byseg[r])
	}
	return buckets, segnum
}

// Schedule runs the Bounded_Length algorithm and returns a complete
// feasible schedule that never mixes segments on one machine.
func Schedule(in *core.Instance, opts Options) (*core.Schedule, error) {
	return schedule(in, opts, nil)
}

// ScheduleScratch is Schedule with the outer (returned) schedule drawn from
// sc; per-segment sub-solves still build their own transient state. The
// returned schedule is only valid until sc's next use.
func ScheduleScratch(in *core.Instance, opts Options, sc *core.Scratch) (*core.Schedule, error) {
	return schedule(in, opts, sc)
}

func schedule(in *core.Instance, opts Options, sc *core.Scratch) (*core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := opts.fill(in); err != nil {
		return nil, err
	}
	s := core.NewScheduleFrom(in, sc)
	buckets, _ := Segments(in, opts.D)
	for _, bucket := range buckets {
		sub := subInstance(in, bucket)
		var solved *core.Schedule
		if fits(sub, opts.ExactLimit) {
			sx, err := exact.SolveMax(sub, opts.ExactLimit)
			if err != nil {
				return nil, err
			}
			solved = sx
		} else {
			solved = firstfit.Schedule(sub)
		}
		graft(s, bucket, solved)
	}
	if err := s.Verify(); err != nil {
		return nil, fmt.Errorf("boundedlength: infeasible result: %w", err)
	}
	return s, nil
}

// fits reports whether every connected component of sub is within limit.
func fits(sub *core.Instance, limit int) bool {
	for _, comp := range sub.Components() {
		if comp.N() > limit {
			return false
		}
	}
	return true
}

// subInstance builds an instance from the selected job indices; position i
// of the sub-instance corresponds to bucket[i].
func subInstance(in *core.Instance, bucket []int) *core.Instance {
	jobs := make([]core.Job, len(bucket))
	for i, j := range bucket {
		jobs[i] = in.Jobs[j]
	}
	return &core.Instance{Name: in.Name + "/seg", G: in.G, Jobs: jobs}
}

// graft copies a sub-instance schedule into s through the placement kernel,
// opening fresh machines.
func graft(s *core.Schedule, bucket []int, solved *core.Schedule) {
	k := s.Placer()
	remap := make([]int, solved.NumMachines())
	for m := range remap {
		remap[m] = k.OpenMachine()
	}
	for i, j := range bucket {
		k.Place(j, remap[solved.MachineOf(i)])
	}
}

// MachineSpec is a "guessed" machine of step 2(b): a busy window within one
// segment; the machine may host up to g independent sets.
type MachineSpec struct {
	Window interval.Interval
}

// MatchISsToMachines performs steps 2(d)–(e): build the bipartite graph
// between machines and independent sets (IS h is connectable to machine i
// when the IS fits entirely inside the machine's window), give each machine
// capacity g and each IS capacity 1, and solve maximum b-matching. It
// returns, for each IS, the machine it is assigned to, and ok = false when
// no perfect matching exists (a wrong guess, in the paper's terms).
//
// iss lists job indices of the enclosing instance; each must be an
// independent set (pairwise non-overlapping jobs), which callers obtain from
// an interval-graph coloring.
func MatchISsToMachines(in *core.Instance, machines []MachineSpec, iss [][]int) (assign []int, ok bool, err error) {
	g := bmatch.NewGraph(len(machines), len(iss))
	for h, is := range iss {
		var set interval.Set
		for _, j := range is {
			set = append(set, in.Jobs[j].Iv)
		}
		if set.MaxDepth() > 1 {
			return nil, false, fmt.Errorf("boundedlength: IS %d is not independent", h)
		}
		hull, okHull := set.Hull()
		if !okHull {
			continue // empty IS matches nothing and nothing is required
		}
		for i, mc := range machines {
			if mc.Window.ContainsInterval(hull) {
				g.AddEdge(i, h)
			}
		}
	}
	bu := make([]int, len(machines))
	for i := range bu {
		bu[i] = in.G
	}
	perfect, matched, err := g.Perfect(bu, nil)
	if err != nil {
		return nil, false, err
	}
	if !perfect {
		return nil, false, nil
	}
	assign = make([]int, len(iss))
	for i := range assign {
		assign[i] = -1
	}
	for _, e := range matched {
		assign[e[1]] = e[0]
	}
	return assign, true, nil
}

// ScheduleFromWitness replays steps 2(b)–(e) with the "guess" taken from a
// feasible witness schedule: the machine windows are the witness machines'
// busy hulls and the independent sets are per-machine colorings of the
// witness assignment. The b-matching must then succeed (the witness is a
// certificate), and the returned schedule costs at most the sum of the
// witness machines' hull lengths.
//
// This exercises the exact code path the analysis of Theorem 3.2 relies on,
// with enumeration replaced by a correct guess.
func ScheduleFromWitness(witness *core.Schedule) (*core.Schedule, error) {
	in := witness.Instance()
	var machines []MachineSpec
	var iss [][]int
	for m := 0; m < witness.NumMachines(); m++ {
		jobs := witness.MachineJobs(m)
		if len(jobs) == 0 {
			continue
		}
		set := make(interval.Set, len(jobs))
		for i, j := range jobs {
			set[i] = in.Jobs[j].Iv
		}
		hull, _ := set.Hull()
		machines = append(machines, MachineSpec{Window: hull})
		colors := intgraph.New(set).MinColoring()
		for _, class := range intgraph.ColorClasses(colors) {
			is := make([]int, len(class))
			for i, pos := range class {
				is[i] = jobs[pos]
			}
			iss = append(iss, is)
		}
	}
	assign, ok, err := MatchISsToMachines(in, machines, iss)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("boundedlength: witness-derived guess had no perfect matching")
	}
	s := core.NewSchedule(in)
	opened := make([]int, len(machines))
	for i := range opened {
		opened[i] = s.OpenMachine()
	}
	for h, is := range iss {
		for _, j := range is {
			s.Assign(j, opened[assign[h]])
		}
	}
	if err := s.Verify(); err != nil {
		return nil, fmt.Errorf("boundedlength: matched schedule infeasible: %w", err)
	}
	return s, nil
}

// SegmentationOverhead returns cost(Schedule)/OPT-style diagnostics for
// Lemma 3.3: the cost of the best segment-respecting schedule this package
// produces and the unrestricted optimum (when exactly solvable). Used by
// the harness to verify the ≤ 2 segmentation loss empirically.
func SegmentationOverhead(in *core.Instance, opts Options) (segmented, unrestricted float64, err error) {
	s, err := Schedule(in, opts)
	if err != nil {
		return 0, 0, err
	}
	opt, err := exact.Solve(in)
	if err != nil {
		return 0, 0, err
	}
	return s.Cost(), opt.Cost(), nil
}
