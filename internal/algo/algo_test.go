package algo

import (
	"testing"

	"busytime/internal/core"
)

func stub(name string) Algorithm {
	return Algorithm{
		Name:        name,
		Description: "stub",
		Run:         func(in *core.Instance) *core.Schedule { return core.NewSchedule(in) },
	}
}

func TestRegisterLookupAll(t *testing.T) {
	Register(stub("zz-test-b"))
	Register(stub("zz-test-a"))
	a, ok := Lookup("zz-test-a")
	if !ok || a.Name != "zz-test-a" {
		t.Fatalf("Lookup failed: %+v %v", a, ok)
	}
	if _, ok := Lookup("zz-missing"); ok {
		t.Error("Lookup found unregistered algorithm")
	}
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("All() not sorted: %q ≥ %q", all[i-1].Name, all[i].Name)
		}
	}
	found := 0
	for _, x := range all {
		if x.Name == "zz-test-a" || x.Name == "zz-test-b" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("All() missing registered stubs (found %d)", found)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(stub("zz-dup"))
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(stub("zz-dup"))
}
