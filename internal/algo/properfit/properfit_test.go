package properfit

import (
	"testing"
	"testing/quick"

	"busytime/internal/algo"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
)

func iv(s, e float64) interval.Interval { return interval.New(s, e) }

func TestRegistered(t *testing.T) {
	if _, ok := algo.Lookup("properfit"); !ok {
		t.Fatal("properfit not registered")
	}
}

func TestEmpty(t *testing.T) {
	s := Schedule(core.NewInstance(3))
	if s.NumMachines() != 0 || s.Verify() != nil {
		t.Error("empty instance mishandled")
	}
}

func TestNextFitOpensOnCliqueOverflow(t *testing.T) {
	// Staircase of 4 mutually overlapping proper intervals, g = 2:
	// jobs 0,1 share M0; job 2 overlaps both → M1; job 3 overlaps 1,2 → M1
	// only if it fits with 2... job 3 overlaps job 2 on M1, fits (g=2).
	in := core.NewInstance(2, iv(0, 10), iv(1, 11), iv(2, 12), iv(3, 13))
	s := Schedule(in)
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if s.NumMachines() != 2 {
		t.Errorf("machines = %d, want 2", s.NumMachines())
	}
	if s.MachineOf(0) != s.MachineOf(1) || s.MachineOf(2) != s.MachineOf(3) {
		t.Errorf("grouping wrong: %v %v %v %v",
			s.MachineOf(0), s.MachineOf(1), s.MachineOf(2), s.MachineOf(3))
	}
}

func TestTheorem31CostDecomposition(t *testing.T) {
	// ALG ≤ OPT + span and OPT ≥ span imply ALG ≤ 2·OPT. Here we check the
	// measurable half on fixed instances: ALG ≤ fractional + span.
	for seed := int64(0); seed < 30; seed++ {
		in := generator.Proper(seed, 24, 3, 30, 8)
		if !in.IsProper() {
			t.Fatalf("generator produced non-proper instance (seed %d)", seed)
		}
		s := Schedule(in)
		if err := s.Verify(); err != nil {
			t.Fatalf("Verify: %v", err)
		}
		bound := core.FractionalBound(in) + in.Span()
		if s.Cost() > bound+1e-9 {
			t.Errorf("seed %d: cost %v > fractional+span %v", seed, s.Cost(), bound)
		}
	}
}

func TestClaim1MachineCount(t *testing.T) {
	// Claim 1: at any time t, N_t ≥ (M_t^A − 2)g + 2. Equivalently the
	// number of machines active at t is at most (N_t − 2)/g + 2.
	for seed := int64(0); seed < 20; seed++ {
		in := generator.Proper(seed, 30, 3, 25, 7)
		s := Schedule(in)
		set := in.Set()
		// Check at every job endpoint.
		for _, jiv := range set {
			for _, pt := range []float64{jiv.Start, jiv.End} {
				nt := set.DepthAt(pt)
				active := 0
				for m := 0; m < s.NumMachines(); m++ {
					if s.MachineSet(m).DepthAt(pt) > 0 {
						active++
					}
				}
				if nt < (active-2)*in.G+2 && active >= 2 {
					t.Errorf("seed %d t=%v: N_t=%d < (M_t−2)g+2 with M_t=%d",
						seed, pt, nt, active)
				}
			}
		}
	}
}

func TestQuickFeasibleOnAnyInstance(t *testing.T) {
	// The guarantee needs proper instances, but feasibility must hold always.
	f := func(seed int64, nn, gg uint8) bool {
		in := generator.General(seed, int(nn%30)+1, int(gg%4)+1, 40, 12)
		s := Schedule(in)
		return s.Verify() == nil && s.Complete()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickProperGeneratorIsProper(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		in := generator.Proper(seed, int(nn%40)+1, 2, 30, 9)
		return in.IsProper()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkProperFit1k(b *testing.B) {
	in := generator.Proper(7, 1000, 4, 500, 25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Schedule(in)
	}
}
