// Package properfit implements the Greedy algorithm for proper interval
// graphs (Section 3.1 of the paper): sort jobs by start time (for proper
// instances this equals the completion-time order) and assign them NextFit
// style — keep filling the current machine; when adding the next job would
// create a (g+1)-clique on it, open a new machine.
//
// Theorem 3.1: on proper instances Greedy(J) ≤ OPT(J) + span(J) ≤ 2·OPT(J).
//
// The greedy is the placement kernel's NextFit primitive driven in the
// instance's cached start order (core.Placer.NextFit).
package properfit

import (
	"busytime/internal/algo"
	"busytime/internal/core"
)

func init() {
	algo.Register(algo.Algorithm{
		Name:        "properfit",
		Description: "NextFit by start time for proper instances (§3.1, 2-approximation)",
		Run:         Schedule,
		RunScratch:  ScheduleScratch,
	})
}

// Schedule runs the greedy NextFit. The 2-approximation guarantee of
// Theorem 3.1 requires a proper instance (use core.Instance.IsProper to
// check); the returned schedule is feasible for any instance.
func Schedule(in *core.Instance) *core.Schedule {
	return scheduleInto(in, core.NewSchedule(in))
}

// ScheduleScratch is Schedule drawing schedule state from sc. The returned
// schedule is only valid until sc's next use.
func ScheduleScratch(in *core.Instance, sc *core.Scratch) *core.Schedule {
	return scheduleInto(in, sc.NewSchedule(in))
}

func scheduleInto(in *core.Instance, s *core.Schedule) *core.Schedule {
	k := s.Placer()
	for _, j := range in.StartOrder() {
		k.NextFit(int(j))
	}
	return s
}
