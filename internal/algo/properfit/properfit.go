// Package properfit implements the Greedy algorithm for proper interval
// graphs (Section 3.1 of the paper): sort jobs by start time (for proper
// instances this equals the completion-time order) and assign them NextFit
// style — keep filling the current machine; when adding the next job would
// create a (g+1)-clique on it, open a new machine.
//
// Theorem 3.1: on proper instances Greedy(J) ≤ OPT(J) + span(J) ≤ 2·OPT(J).
package properfit

import (
	"cmp"
	"slices"

	"busytime/internal/algo"
	"busytime/internal/core"
)

func init() {
	algo.Register(algo.Algorithm{
		Name:        "properfit",
		Description: "NextFit by start time for proper instances (§3.1, 2-approximation)",
		Run:         Schedule,
	})
}

// Schedule runs the greedy NextFit. The 2-approximation guarantee of
// Theorem 3.1 requires a proper instance (use core.Instance.IsProper to
// check); the returned schedule is feasible for any instance.
func Schedule(in *core.Instance) *core.Schedule {
	order := startOrder(in)
	s := core.NewSchedule(in)
	cur := -1
	for _, j := range order {
		if cur < 0 || !s.CanAssign(j, cur) {
			cur = s.OpenMachine()
		}
		s.Assign(j, cur)
	}
	return s
}

// startOrder returns job indices by (start, end, ID).
func startOrder(in *core.Instance) []int {
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	jobs := in.Jobs
	slices.SortFunc(order, func(a, b int) int {
		ja, jb := jobs[a], jobs[b]
		if ja.Iv.Start != jb.Iv.Start {
			if ja.Iv.Start < jb.Iv.Start {
				return -1
			}
			return 1
		}
		if ja.Iv.End != jb.Iv.End {
			if ja.Iv.End < jb.Iv.End {
				return -1
			}
			return 1
		}
		return cmp.Compare(ja.ID, jb.ID)
	})
	return order
}
