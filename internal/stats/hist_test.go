package stats

import (
	"math"
	"slices"
	"sync"
	"testing"
	"time"

	"busytime/internal/xrand"
)

// TestHistIndexRoundTrip pins the bucket geometry: every bucket's lower
// bound maps back to that bucket, and indices are monotone in the value.
func TestHistIndexRoundTrip(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		if got := histIndex(histLower(i)); got != i {
			t.Fatalf("histIndex(histLower(%d)) = %d", i, got)
		}
	}
	prev := -1
	for _, v := range []uint64{0, 1, 15, 16, 17, 31, 32, 100, 1e3, 1e6, 1e9, 1e12, math.MaxUint64} {
		i := histIndex(v)
		if i < prev {
			t.Fatalf("histIndex not monotone at %d: %d < %d", v, i, prev)
		}
		if i < 0 || i >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, i)
		}
		prev = i
	}
}

// TestHistQuantileBounds checks the quantile contract against exact order
// statistics of a random sample: the reported quantile is ≥ the true one
// and within one bucket's relative width above it.
func TestHistQuantileBounds(t *testing.T) {
	rng := xrand.New(7)
	var h Hist
	samples := make([]uint64, 20000)
	for i := range samples {
		// Log-uniform over ~6 decades, the shape of a latency distribution.
		v := uint64(math.Exp(rng.Float64()*14)) + 1
		samples[i] = v
		h.Observe(time.Duration(v))
	}
	slices.Sort(samples)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		idx := int(q*float64(len(samples))) - 1
		if idx < 0 {
			idx = 0
		}
		exact := samples[idx]
		got := uint64(h.Quantile(q))
		if got < exact {
			t.Errorf("q=%v: reported %d below exact %d", q, got, exact)
		}
		// Upper edge of the exact value's bucket, plus one bucket of slack
		// for ties landing across a boundary.
		hi := histLower(histIndex(exact)+2) - 1
		if got > hi {
			t.Errorf("q=%v: reported %d above bucket bound %d (exact %d)", q, got, hi, exact)
		}
	}
	if h.Count() != uint64(len(samples)) {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() <= 0 {
		t.Errorf("Mean = %v", h.Mean())
	}
}

func TestHistEmptyAndReset(t *testing.T) {
	var h Hist
	if h.Quantile(0.99) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(time.Millisecond)
	h.Observe(-time.Second) // clamps to zero, still counted
	if h.Count() != 2 {
		t.Errorf("Count = %d", h.Count())
	}
	s := h.Summary()
	if s.Count != 2 || s.P999 < time.Millisecond/2 {
		t.Errorf("Summary = %+v", s)
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(1) != 0 {
		t.Error("Reset did not clear")
	}
}

// TestHistConcurrentObserve hammers one histogram from many goroutines
// (run under -race in CI) and checks no observation is lost.
func TestHistConcurrentObserve(t *testing.T) {
	var h Hist
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Intn(1e6)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total != workers*per {
		t.Fatalf("bucket sum = %d, want %d", total, workers*per)
	}
}

// TestHistObserveZeroAlloc pins the recording path allocation-free — it sits
// on the daemon's per-frame hot path.
func TestHistObserveZeroAlloc(t *testing.T) {
	var h Hist
	if n := testing.AllocsPerRun(1000, func() { h.Observe(137 * time.Microsecond) }); n != 0 {
		t.Fatalf("Observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = h.Quantile(0.99) }); n != 0 {
		t.Fatalf("Quantile allocates %v/op", n)
	}
}
