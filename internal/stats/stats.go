// Package stats provides the small statistics and table-rendering helpers
// used by the benchmark harness: sample aggregation (mean, stddev, min,
// max), ratio series, and fixed-width text tables matching the rows the
// experiments print.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Sample accumulates observations incrementally (Welford's algorithm).
type Sample struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 { return s.mean }

// Min returns the minimum observation (0 for an empty sample).
func (s *Sample) Min() float64 { return s.min }

// Max returns the maximum observation (0 for an empty sample).
func (s *Sample) Max() float64 { return s.max }

// Var returns the unbiased sample variance (0 when n < 2).
func (s *Sample) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Var()) }

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Stddev() / math.Sqrt(float64(s.n))
}

func (s *Sample) String() string {
	return fmt.Sprintf("mean=%.4f ±%.4f (min=%.4f max=%.4f n=%d)",
		s.Mean(), s.CI95(), s.Min(), s.Max(), s.N())
}

// Table renders fixed-width text tables.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v unless already strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Ratio returns num/den, or NaN when den == 0 and num != 0, and 1 when both
// are 0 (an empty instance solved at zero cost is a perfect ratio).
func Ratio(num, den float64) float64 {
	if den == 0 {
		if num == 0 {
			return 1
		}
		return math.NaN()
	}
	return num / den
}
