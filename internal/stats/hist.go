package stats

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist bucket geometry: values (nanoseconds) up to 2^histLinearBits fall
// into one-nanosecond linear buckets; above that each power-of-two octave
// splits into 2^histLinearBits sub-buckets, so the relative quantization
// error is bounded by 1/2^histLinearBits ≈ 6% everywhere — the usual
// HDR-histogram shape, but with a fixed bucket array so recording is one
// index computation plus one atomic add and a histogram never allocates
// after construction. 60 octaves of int64 nanoseconds cover every duration
// up to ~292 years; anything larger clamps into the top bucket.
const (
	histLinearBits = 4                   // log2 sub-buckets per octave
	histSub        = 1 << histLinearBits // 16
	histBuckets    = (64 - histLinearBits) * histSub
)

// Hist is a fixed-bucket log-scale latency histogram safe for concurrent
// use: Observe is lock-free (a single atomic add on a fixed array), so many
// connection goroutines can record into one histogram without contention
// beyond cache-line sharing, and readers take consistent-enough snapshots
// for telemetry without stopping writers. The zero value is ready to use.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	n      atomic.Uint64
	sum    atomic.Uint64 // total nanoseconds, for Mean
}

// histIndex maps a non-negative nanosecond count onto its bucket.
func histIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // ≥ histLinearBits
	sub := (v >> (uint(exp) - histLinearBits)) & (histSub - 1)
	i := (exp-histLinearBits+1)*histSub + int(sub)
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// histLower returns the inclusive lower bound (ns) of bucket i — the
// inverse of histIndex on bucket boundaries.
func histLower(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	exp := i/histSub + histLinearBits - 1
	sub := uint64(i%histSub) + histSub
	return sub << (uint(exp) - histLinearBits)
}

// Observe records one duration; negative durations count as zero.
func (h *Hist) Observe(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.counts[histIndex(v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.n.Load() }

// Mean returns the mean recorded duration (0 when empty).
func (h *Hist) Mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns an upper estimate of the q-quantile (0 < q ≤ 1) of the
// recorded durations: the upper edge of the bucket holding the q·n-th
// smallest observation, so the true quantile is never under-reported and
// over-reported by at most one bucket width (≤ ~6%). An empty histogram
// reports 0.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= target {
			if i == histBuckets-1 {
				return time.Duration(histLower(i))
			}
			return time.Duration(histLower(i+1) - 1)
		}
	}
	return 0
}

// HistSummary is a point-in-time percentile digest of one histogram, the
// shape the daemon's /stats endpoint and shutdown flush report.
type HistSummary struct {
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Summary digests the histogram into its standard percentile report.
func (h *Hist) Summary() HistSummary {
	return HistSummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Quantile(1),
	}
}

// Reset zeroes the histogram. Not atomic with respect to concurrent
// Observe calls; callers quiesce writers first.
func (h *Hist) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.n.Store(0)
	h.sum.Store(0)
}
