package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"busytime/internal/xrand"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Var()-2.5) > 1e-12 {
		t.Errorf("Var = %v, want 2.5", s.Var())
	}
	if math.Abs(s.Stddev()-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Stddev = %v", s.Stddev())
	}
	if s.CI95() <= 0 {
		t.Error("CI95 should be positive")
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Var() != 0 || s.CI95() != 0 {
		t.Error("empty sample nonzero stats")
	}
	s.Add(7)
	if s.Mean() != 7 || s.Min() != 7 || s.Max() != 7 || s.Var() != 0 {
		t.Error("single observation stats wrong")
	}
}

func TestQuickWelfordMatchesNaive(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		r := xrand.New(seed)
		n := int(nn%30) + 2
		var s Sample
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
			s.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-naiveVar) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T1: demo", "g", "ratio", "note")
	tb.AddRow(2, 1.2345, "ok")
	tb.AddRow(16, 3.0, "long value here")
	out := tb.String()
	if !strings.Contains(out, "T1: demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "1.234") {
		t.Errorf("float not formatted: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// All data lines equally padded (fixed width).
	if len(lines[1]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Errorf("ragged table:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("empty title produced leading newline")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(6, 3); got != 2 {
		t.Errorf("Ratio = %v", got)
	}
	if got := Ratio(0, 0); got != 1 {
		t.Errorf("Ratio(0,0) = %v, want 1", got)
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Error("Ratio(1,0) should be NaN")
	}
}
