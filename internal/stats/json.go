package stats

import (
	"encoding/json"
	"io"
)

// WriteJSON is the library's one JSON telemetry encoder: indented, with a
// trailing newline, HTML escaping off (the output goes to terminals, files
// and curl, not web pages). The busysched CLI's -json modes and the
// busyschedd daemon's /stats and per-tenant endpoints all funnel through it,
// so scripts see one consistent encoding regardless of which surface they
// scrape.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
