module busytime

go 1.24
